// Package a exercises lockcheck: locks leaked on some path, blocking
// operations inside critical sections, and the accepted release-first and
// defer idioms.
package a

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

var errFail = errors.New("fail")

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// Leaky returns without unlocking on the error path.
func (c *counter) Leaky(fail bool) error {
	c.mu.Lock() // want "not released on every return path"
	if fail {
		return errFail
	}
	c.mu.Unlock()
	return nil
}

// LeakyRead leaks the read lock the same way.
func (c *counter) LeakyRead(fail bool) (int, error) {
	c.rw.RLock() // want "not released on every return path"
	if fail {
		return 0, errFail
	}
	n := c.n
	c.rw.RUnlock()
	return n, nil
}

// SendLocked blocks on a channel send inside the critical section.
func (c *counter) SendLocked(ch chan int) {
	c.mu.Lock()
	ch <- c.n // want "channel send while c.mu.Lock"
	c.mu.Unlock()
}

// Render writes to an interface writer while holding the lock — the scrape
// handler bug class.
func (c *counter) Render(w io.Writer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(w, "n=%d\n", c.n) // want "I/O write via fmt.Fprintf while c.mu.Lock"
}

// WaitLocked calls a ctx-accepting (hence cancellable, hence potentially
// slow) function under the lock.
func (c *counter) WaitLocked(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	slowOp(ctx) // want "context-accepting function while c.mu.Lock"
}

// SleepLocked sleeps in the critical section.
func (c *counter) SleepLocked() {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while c.mu.Lock"
	c.mu.Unlock()
}

// WaitGroupLocked waits for other goroutines while holding the lock.
func (c *counter) WaitGroupLocked(wg *sync.WaitGroup) {
	c.mu.Lock()
	wg.Wait() // want "wg.Wait while c.mu.Lock"
	c.mu.Unlock()
}

func slowOp(ctx context.Context) {}

// RenderSnapshot is the accepted shape of Render: snapshot under the lock,
// render outside it.
func (c *counter) RenderSnapshot(w io.Writer) {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	fmt.Fprintf(w, "n=%d\n", n)
}

// Balanced releases on every path.
func (c *counter) Balanced(fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errFail
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// Deferred covers every path, early returns included.
func (c *counter) Deferred(fail bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	if fail {
		return errFail
	}
	return nil
}

// Read uses the read lock with the deferred idiom.
func (c *counter) Read() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.n
}

// TrySend never blocks: the select has a default clause.
func (c *counter) TrySend(ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case ch <- c.n:
	default:
	}
}

// Spawn's goroutine is its own frame; the parent holds no lock across the
// spawn, and the literal's critical section is clean.
func (c *counter) Spawn(ch chan int) {
	go func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
		ch <- 1
	}()
}

// box embeds the mutex; the promoted Lock/Unlock still resolve.
type box struct {
	sync.Mutex
	v int
}

// Put is balanced through the promoted methods.
func (b *box) Put(v int) {
	b.Lock()
	defer b.Unlock()
	b.v = v
}

// PutLeaky leaks the promoted lock on the error path.
func (b *box) PutLeaky(v int, fail bool) error {
	b.Lock() // want "not released on every return path"
	if fail {
		return errFail
	}
	b.v = v
	b.Unlock()
	return nil
}
