// Stub of avfda/internal/ontology for exhaustive-category fixtures: the
// analyzer matches the enum by package path and type name, and the fixture
// root shadows the real module, so this three-member version keeps the
// fixtures small.
package ontology

// Tag is a fault tag.
type Tag int

// Stub tag members.
const (
	TagUnknownT Tag = iota + 1
	TagEnvironment
	TagSoftware
)

// Category is a root failure category.
type Category int

// Stub category members.
const (
	CategoryUnknownC Category = iota + 1
	CategoryMLDesign
	CategorySystem
)
