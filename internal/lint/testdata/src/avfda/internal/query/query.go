// Stub of avfda/internal/query for taintflow fixtures: the analyzer
// treats Engine methods as sinks, Filter as a structured carrier, and
// IsGroupColumn as a bool map-membership validator, all matched by
// package path and shape against this fixture-shadowed version.
package query

// Filter is the structured query carrier; composed Filter values are
// exempt sink arguments.
type Filter struct {
	Manufacturer string
	Tag          string
}

// GroupCount is one group-by bucket.
type GroupCount struct {
	Key string
	N   int
}

// Engine answers queries; its methods are taint sinks.
type Engine struct{ n int }

// Count is a sink taking only the exempt Filter carrier.
func (e *Engine) Count(f Filter) (int, error) { return e.n, nil }

// GroupCount is the sink with a raw string operand (the ?by= column).
func (e *Engine) GroupCount(f Filter, by string) ([]GroupCount, error) { return nil, nil }

// groupColumns is the fixed set of legal group-by columns.
var groupColumns = map[string]bool{"manufacturer": true, "tag": true}

// IsGroupColumn is the validator shape: single bool result whose body
// membership-tests the operand against a map.
func IsGroupColumn(by string) bool { return groupColumns[by] }
