// Stub of avfda/internal/snapshot2 for resleak and viewlife fixtures: the
// analyzers match Open/OpenSeed, View, and its aliasing accessors by
// package path and names, and the fixture root shadows the real module,
// so this skeletal version keeps fixtures small.
package snapshot2

// View is a mapped snapshot. The stub mirrors the shapes the analyzers
// care about: slice-typed fields and accessors alias the mapped payload;
// string accessors copy.
type View struct {
	data []byte
	// Scratch stands in for the view's own internal structures: storing a
	// borrow here is fine, the bytes and the view die together.
	Scratch [][]byte
	idx     map[string][]int
}

// Open maps a snapshot file.
func Open(path string) (*View, error) { return &View{}, nil }

// OpenSeed maps the snapshot for one study seed.
func OpenSeed(dir string, seed int64) (*View, error) { return &View{}, nil }

// Close unmaps the view.
func (v *View) Close() error { return nil }

// NumRows is a scalar accessor: nothing aliases.
func (v *View) NumRows() int { return 0 }

// Payload hands out mapped bytes (aliasing accessor).
func (v *View) Payload() []byte { return v.data }

// ManufacturerIDs hands out a posting list over the mapped payload
// (aliasing accessor).
func (v *View) ManufacturerIDs(key string) []int { return v.idx[key] }

// Manufacturer materializes a string (copies; not a borrow).
func (v *View) Manufacturer(i int) string { return string(v.data[:i]) }
