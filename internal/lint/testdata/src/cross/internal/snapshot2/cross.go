// Package snapshot2 (fixture; the path suffix puts it in both goroleak's
// and nondeterm's scope) puts a goroleak and a nondeterm violation on the
// same source line so the suppression test can pin that a //lint:allow
// for one analyzer does not hide the other's diagnostic on that line.
package snapshot2

import "time"

func record(t time.Time) {}

// goroAllowed: only goroleak is suppressed; nondeterm must survive.
func goroAllowed() {
	//lint:allow goroleak fixture: suppression must stay per-analyzer
	go record(time.Now())
}

// nondetermAllowed: only nondeterm is suppressed; goroleak must survive.
func nondetermAllowed() {
	//lint:allow nondeterm fixture: suppression must stay per-analyzer
	go record(time.Now())
}

// bothFlagged has no allow: both analyzers fire on the one line.
func bothFlagged() {
	go record(time.Now())
}
