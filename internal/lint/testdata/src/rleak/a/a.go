// Package a exercises resleak: unclosed response bodies, files, snapshot
// views, and pool borrows are flagged; deferred closes, error-edge nil
// contracts, ownership returns, and interprocedural helper-closes and
// acquirer-wrapper shapes are modeled.
package a

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"sync"

	"avfda/internal/snapshot2"
)

// forgotClose reads the body and never closes it; io.ReadAll(resp.Body) is
// a projection, not an ownership transfer.
func forgotClose(u string) string {
	resp, err := http.Get(u) // want "response body acquired here is not closed/released on every path to return"
	if err != nil {
		return ""
	}
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// deferredClose is the accepted idiom: the err-nil contract plus a
// deferred close covering every remaining path.
func deferredClose(u string) string {
	resp, err := http.Get(u)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// branchLeak closes on the fallthrough path but leaks on the early return.
func branchLeak(p string, skip bool) error {
	f, err := os.Open(p) // want "file acquired here is not closed/released on every path to return"
	if err != nil {
		return err
	}
	if skip {
		return nil
	}
	f.Close()
	return nil
}

// branchClosed closes on every path.
func branchClosed(p string, skip bool) error {
	f, err := os.Open(p)
	if err != nil {
		return err
	}
	if skip {
		f.Close()
		return nil
	}
	f.Close()
	return nil
}

// discarded drops the resource on the floor at the statement level.
func discarded(p string) {
	os.Open(p) // want "file acquired and immediately discarded; close it or assign it"
}

// blanked can never be closed.
func blanked(u string) {
	_, _ = http.Get(u) // want "response body assigned to the blank identifier can never be closed"
}

// returned hands ownership to the caller: never flagged.
func returned(p string) (*os.File, error) {
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	return f, nil
}

var bufPool sync.Pool

// poolLeak borrows a buffer and never puts it back.
func poolLeak() {
	b := bufPool.Get().(*bytes.Buffer) // want "pool borrow acquired here is not closed/released on every path to return"
	b.Reset()
}

// poolReturned is the borrow/reset/put cycle the serving layer uses.
func poolReturned() {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	defer bufPool.Put(b)
}

// viewLeak maps a snapshot and forgets it on the success path.
func viewLeak(dir string) (int, error) {
	v, err := snapshot2.OpenSeed(dir, 42) // want "snapshot view acquired here is not closed/released on every path to return"
	if err != nil {
		return 0, err
	}
	return v.NumRows(), nil
}

// viewClosed is the accepted shape.
func viewClosed(dir string) (int, error) {
	v, err := snapshot2.OpenSeed(dir, 42)
	if err != nil {
		return 0, err
	}
	defer v.Close()
	return v.NumRows(), nil
}

// drain is the relayResponse idiom: the helper owns the close, so its
// summary releases operand 0 on every path.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// helperCloses hands the body to a helper whose summary closes it.
func helperCloses(u string) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	drain(resp)
	return nil
}

// openStudy is an acquirer wrapper: its summary says the caller owns the
// returned view.
func openStudy(dir string) (*snapshot2.View, error) {
	return snapshot2.OpenSeed(dir, 42)
}

// wrapperLeak leaks a resource only visible interprocedurally: without
// openStudy's ReturnsResource summary nothing here looks like an
// acquisition.
func wrapperLeak(dir string) error {
	v, err := openStudy(dir) // want "snapshot view acquired here is not closed/released on every path to return"
	if err != nil {
		return err
	}
	_ = v.NumRows()
	return nil
}

// wrapperClosed is the same acquisition with the obligation met.
func wrapperClosed(dir string) error {
	v, err := openStudy(dir)
	if err != nil {
		return err
	}
	defer v.Close()
	_ = v.NumRows()
	return nil
}
