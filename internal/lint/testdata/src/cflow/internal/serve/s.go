// Package serve exercises ctxflow on the request path: minting a root
// context where one is already in scope is flagged; deriving from the
// in-scope context is the accepted idiom.
package serve

import (
	"context"
	"net/http"
	"time"
)

func fetch(ctx context.Context, q string) error { return nil }

// Handle has the request context one call away and discards it.
func Handle(w http.ResponseWriter, r *http.Request) {
	_ = fetch(context.Background(), "q") // want "discards the in-scope context"
}

// HandleTODO: TODO is no better than Background.
func HandleTODO(ctx context.Context) {
	_ = fetch(context.TODO(), "q") // want "discards the in-scope context"
}

// Closure literals inherit the enclosing frame's context.
func Closure(ctx context.Context) func() error {
	return func() error {
		return fetch(context.Background(), "q") // want "discards the in-scope context"
	}
}

// Rebuild has no context of its own and mints one straight into a
// ctx-accepting callee instead of taking a parameter.
func Rebuild() error {
	return fetch(context.Background(), "all") // want "thread a context.Context parameter through fetch"
}

// HandleDeadline derives its deadline from the request context.
func HandleDeadline(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	_ = fetch(ctx, "q")
}

// Threaded passes the in-scope context down.
func Threaded(ctx context.Context) error {
	return fetch(ctx, "q")
}

// detached holds a process-scoped root: a deliberate lifecycle decision,
// not a call-site drop, and not flagged.
var detached = context.Background()
