// Package other is outside ctxflow's scoped packages: process roots are
// legitimate here (main-style wiring) and not flagged.
package other

import "context"

func needsCtx(ctx context.Context) {}

// Root would be flagged in internal/serve; this package is out of scope.
func Root() {
	needsCtx(context.Background())
}
