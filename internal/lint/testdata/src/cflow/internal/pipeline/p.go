// Package pipeline exercises ctxflow on the worker path.
package pipeline

import "context"

func decodeAll(ctx context.Context, n int) error { return nil }

// Run should accept and thread a context instead of minting a root at the
// fan-out call.
func Run(n int) error {
	return decodeAll(context.Background(), n) // want "thread a context.Context parameter through decodeAll"
}

// RunCtx is the fixed shape.
func RunCtx(ctx context.Context, n int) error {
	return decodeAll(ctx, n)
}
