// Package a exercises atomicmix: fields and package variables updated
// through sync/atomic must not be read — or read-modify-written — as
// plain values elsewhere, and typed atomics must not be copied. Accepted:
// access under a mutex, plain access to never-atomic fields, typed-atomic
// method calls, plain initialization writes, and atomics on locals
// (the goroutine-then-join idiom).
package a

import (
	"sync"
	"sync/atomic"

	"amix/b"
)

type Counter struct {
	mu   sync.Mutex
	hits int64
	cold int64
	flag atomic.Bool
}

// Incr is the atomic updater that marks the hits field.
func (c *Counter) Incr() {
	atomic.AddInt64(&c.hits, 1)
}

// Snapshot reads hits plainly with no lock held: a torn-read candidate.
func (c *Counter) Snapshot() int64 {
	return c.hits // want `\(a\.Counter\)\.hits is updated atomically \(atomic\.AddInt64 at a\.go:\d+\) but accessed as a plain value`
}

// Guarded reads hits under the mutex — the "one mutex at every access"
// escape hatch the diagnostic names.
func (c *Counter) Guarded() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Bump is a plain read-modify-write of an atomically-updated field: the
// increment both reads and writes without atomicity.
func (c *Counter) Bump() {
	c.hits++ // want `\(a\.Counter\)\.hits is updated atomically .* but accessed as a plain value`
}

// Reset writes through plain assignment — the initialization idiom, a
// documented false negative, accepted.
func (c *Counter) Reset() {
	c.hits = 0
}

// ColdPath touches a field no code updates atomically: plain access is
// the normal case and must stay silent.
func (c *Counter) ColdPath() int64 {
	return c.cold
}

// FlagCopy copies a typed atomic by value — flagged on the type alone, no
// marker needed.
func (c *Counter) FlagCopy() bool {
	f := c.flag // want `\(a\.Counter\)\.flag has atomic type atomic\.Bool; copying the value races`
	return f.Load()
}

// FlagOK drives the typed atomic through its methods — accepted.
func (c *Counter) FlagOK() bool {
	return c.flag.Load()
}

var total int64

func AddTotal() {
	atomic.AddInt64(&total, 1)
}

// ReadTotal reads the package variable plainly; the marker came from
// AddTotal.
func ReadTotal() int64 {
	return total // want `a\.total is updated atomically \(atomic\.AddInt64 at a\.go:\d+\) but accessed as a plain value`
}

// Cross reads a field whose only atomic updater lives in package b: the
// marker is visible solely through the module-wide sweep.
func Cross() int64 {
	return b.Shared.N // want `\(b\.Box\)\.N is updated atomically \(atomic\.AddInt64 at b\.go:\d+\) but accessed as a plain value`
}

// LocalJoin updates a local atomically inside a goroutine and reads it
// plainly after the join — locals never become markers (documented false
// negative: the analysis cannot see the wg.Wait happens-before edge, so
// it must not guess).
func LocalJoin() int64 {
	var n int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		atomic.AddInt64(&n, 1)
	}()
	wg.Wait()
	return n
}
