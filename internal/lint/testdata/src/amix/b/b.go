// Package b supplies amix's cross-package evidence: Box.N is updated
// atomically only here, so a plain read in package a is diagnosable only
// through the module-wide marker sweep.
package b

import "sync/atomic"

type Box struct {
	N int64
}

var Shared Box

// Touch is the sole atomic updater of Shared.N in the module.
func Touch() {
	atomic.AddInt64(&Shared.N, 1)
}
