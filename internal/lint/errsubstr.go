package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// stringsMatchers are the strings-package functions whose use on an error
// message constitutes substring classification.
var stringsMatchers = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true,
	"EqualFold": true, "Index": true, "Compare": true,
}

// ErrSubstr flags classification of errors by their rendered text:
// strings.Contains/HasPrefix/HasSuffix/... over err.Error(), and ==/!=
// comparisons of err.Error() against anything. Error text is presentation,
// not identity — wrapping, rewording, or localizing a message silently
// breaks every substring match, which is exactly the serving-layer bug PR 3
// fixed. Classify with errors.Is (sentinels) or errors.As (typed errors
// like *query.ColumnError) instead.
//
// Unlike the determinism analyzers this one runs on _test.go files too:
// assertions are where the anti-pattern breeds, and the typed-error test
// helpers make the right thing just as short.
var ErrSubstr = &Analyzer{
	Name: "errsubstr",
	Doc: "flags strings.Contains/==/!= matching on err.Error(); classify errors " +
		"with errors.Is/errors.As on sentinels or typed errors instead",
	Run: runErrSubstr,
}

func runErrSubstr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if calleePkg(pass, n) != "strings" {
					return true
				}
				sel := n.Fun.(*ast.SelectorExpr)
				if !stringsMatchers[sel.Sel.Name] {
					return true
				}
				for _, arg := range n.Args {
					if isErrErrorCall(pass, arg) {
						pass.Reportf(n.Pos(), "strings.%s on err.Error(): error text is not an API; classify with errors.Is/errors.As on the typed error", sel.Sel.Name)
						break
					}
				}
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if isErrErrorCall(pass, n.X) || isErrErrorCall(pass, n.Y) {
					pass.Reportf(n.Pos(), "comparing err.Error() with %s: error text is not an API; compare with errors.Is on a sentinel or errors.As on the typed error", n.Op)
				}
			}
			return true
		})
	}
	return nil
}

// isErrErrorCall reports whether e is a call of the Error() string method
// on a value that implements the error interface.
func isErrErrorCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	recv := pass.Info.TypeOf(sel.X)
	if recv == nil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(recv, errIface) || types.Implements(types.NewPointer(recv), errIface)
}
