package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestLockOrder drives lockorder over ordering fixtures: opposite-order
// acquisition of two mutexes — direct, through a helper's summary, and
// across the lockord/b package boundary — is flagged as a cycle, and
// same-instance reacquisition through a method chain as a self-deadlock.
// Consistent ordering, sequential critical sections, and hand-over-hand
// child-instance locking are accepted.
func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.LockOrder, "lockord/a")
}
