package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestErrSubstr drives the errsubstr analyzer over fixtures with flagged
// patterns (strings.Contains/HasPrefix on err.Error(), ==/!= on the
// rendered message — in regular and _test.go files) and accepted ones
// (errors.Is on a sentinel, errors.As on a typed error, plain-string
// matching).
func TestErrSubstr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.ErrSubstr, "errsubstr/a")
}
