package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestNonDeterm drives the nondeterm analyzer over fixtures with flagged
// patterns (time.Now/Since and global math/rand draws in a pipeline-stage
// package) and accepted ones (a *rand.Rand seeded explicitly, injected
// timestamps, and ambient time outside the guarded packages).
func TestNonDeterm(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.NonDeterm,
		"nd/internal/synth", "nd/internal/ocr")
}
