package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestResleak drives resleak over resource fixtures: unclosed response
// bodies, files, snapshot views, and pool borrows are flagged (including
// the interprocedural acquirer-wrapper shape); deferred closes, err-nil
// contracts, ownership returns, and helper-closes summaries are accepted.
func TestResleak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.Resleak, "rleak/a")
}
