package lint

// lockorder builds a module-wide lock-ordering graph: for every function in
// the current package and its in-module import closure it records which
// locks are acquired while which others are held — interprocedurally,
// through lockSummary (callgraph.go) — and flags cycles in that graph as
// potential deadlocks, plus provable same-instance reacquisition of a
// non-reentrant mutex.
//
// Lock identity is the variable the mutex lives in: a struct field
// ((serve.Cache).mu) or a (package-level or local) variable. That makes the
// analysis instance-insensitive — all values of one field are one lock
// class — which is the right granularity for ordering: two goroutines
// locking different instances of the same two fields in opposite orders
// deadlock just the same. The one place instances matter is self-edges:
// reacquiring the same field on a *different* instance (child.mu under
// parent.mu) is legal tree-walking, so a same-lock edge is only reported
// when both acquisitions provably root at the same object.
//
// Reports are anchored to the current package: each pass folds the whole
// closure's edges into the graph but reports only the edges its own
// functions witness, so a cycle spanning packages is diagnosed exactly once
// per witnessing site and the result depends only on the package plus its
// dependency closure (the property the findings cache keys on).
//
// Documented false negatives (DESIGN.md §26): locks reached through
// interface or func-value dispatch, locks acquired inside function
// literals and deferred calls, cycles between sibling packages with no
// import relationship, and opposite-order acquisition of the same two
// fields on swapped instances (Swap(a,b) vs Swap(b,a)).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"avfda/internal/lint/cfg"
)

// LockOrder flags lock-ordering cycles (potential deadlocks) in the
// module-wide acquisition graph and same-instance mutex reacquisition.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "builds the module-wide lock-ordering graph (which locks each function acquires " +
		"while holding which others, interprocedurally) and flags cycles as potential " +
		"deadlocks, plus same-instance reacquisition of a non-reentrant mutex",
	Version: 1,
	Run:     runLockOrder,
}

// lockAcq is one lock acquisition a function may perform, directly or
// through its callees.
type lockAcq struct {
	lock *types.Var
	kind byte // 'W' (Lock) or 'R' (RLock)
	// pos is the ultimate acquire site (possibly in a callee's file).
	pos token.Pos
	// via is the call chain from the summarized function to the acquire,
	// outermost callee first; empty for a direct acquisition.
	via []string
	// recvRooted records that the acquisition's access path is rooted at
	// the summarized function's receiver, with recvSuffix the path below it
	// (".mu" for a receiver method locking c.mu), so callers can compose
	// same-instance facts through method chains.
	recvRooted bool
	recvSuffix string
}

// lockEdge is one witnessed ordering fact: `to` acquired while `from` was
// held, in the summarized function.
type lockEdge struct {
	from, to *types.Var
	// fromPos is the outer acquisition site, always in the witnessing
	// function.
	fromPos token.Pos
	// pos is the report site in the witnessing function: the inner acquire,
	// or the call that transitively acquires.
	pos token.Pos
	// innerPos is the ultimate inner acquire site (== pos for direct edges).
	innerPos token.Pos
	via      []string
	// self marks a provable same-instance reacquisition (from == to).
	self bool
}

// lockSummary is one function's lock facts: what it may acquire, and the
// ordering edges its own body witnesses.
type lockSummary struct {
	acquires []lockAcq
	edges    []lockEdge
}

// lockHeldKey identifies one held acquisition: the lock class plus the
// provable access path of the receiver expression — root object and
// rendered selector chain ("c", "c.mu" vs "c.next.mu"). The path keeps
// distinct instances of one lock field distinct for self-edge reasoning
// (locking n.next.mu under n.mu is tree-walking, not reacquisition); an
// unprovable path (index, call, or literal in the chain) is root nil,
// path "".
type lockHeldKey struct {
	lock *types.Var
	root types.Object
	path string
}

type lockHeldVal struct {
	pos  token.Pos
	kind byte
}

// lockOrderState is the may-held lock set at a program point.
type lockOrderState map[lockHeldKey]lockHeldVal

type lockAcqKey struct {
	lock *types.Var
	kind byte
}

type lockEdgeKey struct {
	from, to *types.Var
	pos      token.Pos
}

// computeLockSummary walks fn's CFG tracking the held-lock set and records
// both its transitive acquisitions and the ordering edges its body
// witnesses. Callee facts come from s.lock — nil (unknown callee, SCC mate)
// means "acquires nothing", the conservative false-negative fallback shared
// with the other gen-3 summaries.
func computeLockSummary(s *summaries, fn *types.Func, src FuncSource) *lockSummary {
	info := src.Info
	var recvObj types.Object
	var recvName string
	if r := src.Decl.Recv; r != nil && len(r.List) == 1 && len(r.List[0].Names) == 1 {
		recvObj = info.ObjectOf(r.List[0].Names[0])
		recvName = r.List[0].Names[0].Name
	}

	g := cfg.New(src.Decl.Body)
	in := cfg.Forward(g, cfg.Flow[lockOrderState]{
		Entry: lockOrderState{},
		Transfer: func(n ast.Node, st lockOrderState) lockOrderState {
			return lockOrderTransfer(s, info, n, st)
		},
		Join:  joinLockOrder,
		Equal: equalLockOrder,
		Clone: cloneLockOrder,
	})

	sum := &lockSummary{}
	seenAcq := map[lockAcqKey]bool{}
	seenEdge := map[lockEdgeKey]bool{}
	for _, blk := range g.Blocks {
		st, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		st = cloneLockOrder(st)
		for _, n := range blk.Nodes {
			lockOrderRecord(s, info, recvObj, recvName, n, st, sum, seenAcq, seenEdge)
			st = lockOrderTransfer(s, info, n, st)
		}
	}
	return sum
}

// lockOrderRecord scans one block node with the held set st valid on entry
// to the node, recording acquisitions and ordering edges into sum.
func lockOrderRecord(s *summaries, info *types.Info, recvObj types.Object, recvName string, n ast.Node,
	st lockOrderState, sum *lockSummary, seenAcq map[lockAcqKey]bool, seenEdge map[lockEdgeKey]bool) {
	switch n.(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		// Another goroutine's stack, or run-at-exit semantics this analysis
		// does not model (deferred unlocks keep the lock held, which the
		// transfer function already encodes by ignoring defers).
		return
	}
	addAcq := func(a lockAcq) {
		k := lockAcqKey{a.lock, a.kind}
		if !seenAcq[k] {
			seenAcq[k] = true
			sum.acquires = append(sum.acquires, a)
		}
	}
	addEdge := func(e lockEdge) {
		k := lockEdgeKey{e.from, e.to, e.pos}
		if !seenEdge[k] {
			seenEdge[k] = true
			sum.edges = append(sum.edges, e)
		}
	}
	scanShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v, root, path, kind, acquire, isOp := lockOrderOp(s, info, call); isOp {
			if !acquire {
				return true
			}
			recvRooted := recvObj != nil && root == recvObj && path != ""
			a := lockAcq{lock: v, kind: kind, pos: call.Pos(), recvRooted: recvRooted}
			if recvRooted {
				a.recvSuffix = strings.TrimPrefix(path, recvName)
			}
			addAcq(a)
			for _, h := range sortedHeld(st) {
				if h.key.lock == v {
					// Same lock class: only a provable same-instance
					// reacquisition is a bug (locking n.next.mu under n.mu is
					// legal tree-walking), and at least one side must be a
					// write lock — nested RLocks alone do not self-deadlock.
					if root != nil && h.key.root == root && path != "" && h.key.path == path &&
						(kind == 'W' || h.val.kind == 'W') {
						addEdge(lockEdge{from: v, to: v, fromPos: h.val.pos,
							pos: call.Pos(), innerPos: call.Pos(), self: true})
					}
					continue
				}
				addEdge(lockEdge{from: h.key.lock, to: v, fromPos: h.val.pos,
					pos: call.Pos(), innerPos: call.Pos()})
			}
			return true
		}
		callee, operands := calleeFunc(info, call)
		sub := s.lock(callee)
		if sub == nil || len(sub.acquires) == 0 {
			return true
		}
		// The call's receiver access path, for composing same-instance facts
		// through method chains: with s.mu held, s.helper() reacquiring its
		// receiver's .mu resolves to the caller-frame path "s"+".mu".
		var callRecvRoot types.Object
		var callRecvPath string
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && len(operands) > 0 {
			callRecvRoot, callRecvPath = provableLockPath(info, operands[0])
		}
		for _, acq := range sub.acquires {
			via := append([]string{funcDisplay(callee)}, acq.via...)
			sameInst := acq.recvRooted && callRecvRoot != nil && callRecvPath != ""
			callerPath := ""
			if sameInst {
				callerPath = callRecvPath + acq.recvSuffix
			}
			for _, h := range sortedHeld(st) {
				if h.key.lock == acq.lock {
					if sameInst && h.key.root == callRecvRoot && h.key.path == callerPath &&
						(acq.kind == 'W' || h.val.kind == 'W') {
						addEdge(lockEdge{from: acq.lock, to: acq.lock, fromPos: h.val.pos,
							pos: call.Pos(), innerPos: acq.pos, via: via, self: true})
					}
					continue
				}
				addEdge(lockEdge{from: h.key.lock, to: acq.lock, fromPos: h.val.pos,
					pos: call.Pos(), innerPos: acq.pos, via: via})
			}
			up := lockAcq{lock: acq.lock, kind: acq.kind, pos: acq.pos, via: via,
				recvRooted: sameInst && recvObj != nil && callRecvRoot == recvObj}
			if up.recvRooted {
				up.recvSuffix = strings.TrimPrefix(callerPath, recvName)
			}
			addAcq(up)
		}
		return true
	})
}

// provableLockPath resolves an expression to a provable access path: the
// root object plus the rendered selector chain ("c", "c.next.mu"). Parens,
// address-of, and pointer derefs are transparent; any index, slice, call,
// or literal in the chain makes the instance unprovable (nil, "").
func provableLockPath(info *types.Info, e ast.Expr) (types.Object, string) {
	switch x := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(x); obj != nil {
			return obj, x.Name
		}
	case *ast.SelectorExpr:
		if root, p := provableLockPath(info, x.X); root != nil {
			return root, p + "." + x.Sel.Name
		}
	case *ast.ParenExpr:
		return provableLockPath(info, x.X)
	case *ast.StarExpr:
		return provableLockPath(info, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return provableLockPath(info, x.X)
		}
	}
	return nil, ""
}

// lockOrderTransfer applies one node's lock effects to the held set.
// Deferred statements are ignored entirely: a deferred unlock runs at
// return, so the lock correctly stays held for the rest of the body.
func lockOrderTransfer(s *summaries, info *types.Info, n ast.Node, st lockOrderState) lockOrderState {
	switch n.(type) {
	case *ast.GoStmt, *ast.DeferStmt:
		return st
	}
	scanShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		v, root, path, kind, acquire, isOp := lockOrderOp(s, info, call)
		if !isOp {
			return true
		}
		k := lockHeldKey{v, root, path}
		if acquire {
			if prev, held := st[k]; held {
				// Keep the earliest acquisition site; a write lock on any
				// path dominates for self-edge purposes.
				if kind == 'W' && prev.kind == 'R' {
					prev.kind = 'W'
					st[k] = prev
				}
			} else {
				st[k] = lockHeldVal{pos: call.Pos(), kind: kind}
			}
		} else {
			delete(st, k)
		}
		return true
	})
	return st
}

func joinLockOrder(a, b lockOrderState) lockOrderState {
	out := cloneLockOrder(a)
	for k, v := range b {
		if prev, ok := out[k]; ok {
			// Earliest site wins for stable diagnostics; 'W' dominates.
			if v.pos < prev.pos {
				v, prev = prev, v
			}
			if v.kind == 'W' {
				prev.kind = 'W'
			}
			out[k] = prev
		} else {
			out[k] = v
		}
	}
	return out
}

func equalLockOrder(a, b lockOrderState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func cloneLockOrder(st lockOrderState) lockOrderState {
	out := make(lockOrderState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

type heldEntry struct {
	key lockHeldKey
	val lockHeldVal
}

// sortedHeld orders the held set by acquisition site — each site is one
// call expression, so the order is total and deterministic.
func sortedHeld(st lockOrderState) []heldEntry {
	out := make([]heldEntry, 0, len(st))
	for k, v := range st {
		out = append(out, heldEntry{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].val.pos < out[j].val.pos })
	return out
}

// lockOrderOp classifies call as a Lock/Unlock/RLock/RUnlock operation on a
// sync.Mutex or sync.RWMutex (including promoted methods from an embedded
// mutex), resolving the lock's class identity — the field or variable the
// mutex lives in — plus the provable instance path of the receiver chain.
func lockOrderOp(s *summaries, info *types.Info, call *ast.CallExpr) (v *types.Var, root types.Object, path string, kind byte, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, "", 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock":
		kind, acquire = 'W', sel.Sel.Name == "Lock"
	case "RLock", "RUnlock":
		kind, acquire = 'R', sel.Sel.Name == "RLock"
	default:
		return nil, nil, "", 0, false, false
	}
	if isSyncMutex(info.TypeOf(sel.X)) {
		v, name := lockVarOf(info, sel.X)
		if v == nil {
			return nil, nil, "", 0, false, false
		}
		s.noteLockName(v, name)
		root, path = provableLockPath(info, sel.X)
		return v, root, path, kind, acquire, true
	}
	// Promoted method from an embedded mutex: the lock is the embedded
	// field, resolved through the selection's index path.
	if selx, found := info.Selections[sel]; found {
		if fn, isFn := selx.Obj().(*types.Func); isFn {
			if r := fn.Type().(*types.Signature).Recv(); r != nil && isSyncMutex(r.Type()) {
				if f, name := embeddedLockField(info, sel.X, selx); f != nil {
					s.noteLockName(f, name)
					root, path = provableLockPath(info, sel.X)
					return f, root, path, kind, acquire, true
				}
			}
		}
	}
	return nil, nil, "", 0, false, false
}

// lockVarOf resolves a mutex-valued receiver expression to the variable
// holding it — a struct field, a package-level variable, or a local — plus
// a stable display name. Index and deref layers collapse onto their base
// (locks[i] is the lock class of the `locks` field).
func lockVarOf(info *types.Info, e ast.Expr) (*types.Var, string) {
	e = unparen(e)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = unparen(x.X)
		case *ast.StarExpr:
			e = unparen(x.X)
		default:
			goto resolved
		}
	}
resolved:
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v, v.Pkg().Name() + "." + v.Name()
			}
			return v, v.Name()
		}
	case *ast.SelectorExpr:
		if selx, ok := info.Selections[x]; ok && selx.Kind() == types.FieldVal {
			if v, ok := selx.Obj().(*types.Var); ok {
				return v, "(" + typeDisplay(info.TypeOf(x.X)) + ")." + v.Name()
			}
		}
		// Package-qualified variable (pkg.Mu).
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v, v.Pkg().Name() + "." + v.Name()
		}
	}
	return nil, ""
}

// embeddedLockField walks a promoted-method selection's index path to the
// embedded mutex field that supplies the method.
func embeddedLockField(info *types.Info, recv ast.Expr, selx *types.Selection) (*types.Var, string) {
	t := info.TypeOf(recv)
	display := typeDisplay(t)
	idx := selx.Index()
	var field *types.Var
	for _, i := range idx[:len(idx)-1] {
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok || i >= st.NumFields() {
			return nil, ""
		}
		field = st.Field(i)
		t = field.Type()
	}
	if field == nil {
		return nil, ""
	}
	return field, "(" + display + ")." + field.Name()
}

// typeDisplay renders a type name for diagnostics: pkg.Name for named
// types (after pointer indirection), the type string otherwise.
func typeDisplay(t types.Type) string {
	if t == nil {
		return "?"
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return obj.Name()
	}
	return t.String()
}

// funcDisplay renders a function name for via-chains: (recvType).Name for
// methods, pkg.Name for package-level functions.
func funcDisplay(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "(" + typeDisplay(sig.Recv().Type()) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// noteLockName records the first display name resolved for a lock.
// Summaries compute in deterministic source order, so "first" is stable.
func (s *summaries) noteLockName(v *types.Var, name string) {
	if _, ok := s.lockNames[v]; !ok {
		s.lockNames[v] = name
	}
}

func (s *summaries) lockName(v *types.Var) string {
	if name, ok := s.lockNames[v]; ok {
		return name
	}
	return v.Name()
}

func runLockOrder(pass *Pass) error {
	sums := pass.summaries()
	if sums == nil || pass.Funcs == nil {
		return nil
	}

	// The current package's non-test functions in source order — the only
	// functions this pass reports on. An edge needs a lock held across an
	// acquisition, so functions with no syntactic lock op witness nothing
	// and are skipped (their summaries are still computed on demand when a
	// witnessing function calls them).
	type witness struct{ edge lockEdge }
	var curEdges []witness
	adj := map[*types.Var]map[*types.Var]bool{}
	addAdj := func(e lockEdge) {
		if e.self {
			return
		}
		m := adj[e.from]
		if m == nil {
			m = map[*types.Var]bool{}
			adj[e.from] = m
		}
		m[e.to] = true
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !mentionsLockOp(pass, fd.Body) {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if sum := sums.lock(fn); sum != nil {
				for _, e := range sum.edges {
					curEdges = append(curEdges, witness{e})
					addAdj(e)
				}
			}
		}
	}
	if len(curEdges) == 0 {
		return nil
	}

	// Fold in the ordering edges of every other in-module package in the
	// import closure, so a cycle whose other half lives in a dependency is
	// visible from the package witnessing this half.
	for _, path := range inModuleClosure(pass) {
		for _, fn := range pass.Funcs.FuncsIn(path) {
			src, ok := pass.Funcs.Source(fn)
			if !ok {
				continue
			}
			if strings.HasSuffix(pass.Fset.Position(src.Decl.Pos()).Filename, "_test.go") {
				continue
			}
			if sum := sums.lock(fn); sum != nil {
				for _, e := range sum.edges {
					addAdj(e)
				}
			}
		}
	}

	reported := map[lockEdgeKey]bool{}
	for _, w := range curEdges {
		e := w.edge
		k := lockEdgeKey{e.from, e.to, e.pos}
		if reported[k] {
			continue
		}
		name := sums.lockName(e.to)
		heldLine := pass.Fset.Position(e.fromPos).Line
		if e.self {
			reported[k] = true
			if len(e.via) == 0 {
				pass.Reportf(e.pos, "reacquiring %s already held since line %d: sync mutexes are not reentrant, this deadlocks",
					name, heldLine)
			} else {
				pass.Reportf(e.pos, "call to %s reacquires %s (at %s) already held since line %d: sync mutexes are not reentrant, this deadlocks",
					strings.Join(e.via, " → "), name, posShort(pass.Fset, e.innerPos), heldLine)
			}
			continue
		}
		cyc := lockCyclePath(adj, sums, e.to, e.from)
		if cyc == nil {
			continue
		}
		reported[k] = true
		// cyc runs e.to ⇝ e.from; prefixing e.from closes the loop visually:
		// from → to → … → from.
		names := make([]string, 0, len(cyc)+1)
		names = append(names, sums.lockName(e.from))
		for _, v := range cyc {
			names = append(names, sums.lockName(v))
		}
		cycle := strings.Join(names, " → ")
		if len(e.via) == 0 {
			pass.Reportf(e.pos, "acquiring %s while holding %s (acquired at line %d) creates the lock-ordering cycle %s; acquire these locks in one consistent order",
				name, sums.lockName(e.from), heldLine, cycle)
		} else {
			pass.Reportf(e.pos, "call to %s acquires %s (at %s) while %s is held (acquired at line %d), creating the lock-ordering cycle %s; acquire these locks in one consistent order",
				strings.Join(e.via, " → "), name, posShort(pass.Fset, e.innerPos),
				sums.lockName(e.from), heldLine, cycle)
		}
	}
	return nil
}

// lockCyclePath finds a path start ⇝ target in the acquisition graph by
// BFS with name-sorted neighbor order, returning the lock sequence
// [start, ..., target], or nil. A found path closes a cycle with the edge
// target → start the caller holds.
func lockCyclePath(adj map[*types.Var]map[*types.Var]bool, sums *summaries, start, target *types.Var) []*types.Var {
	prev := map[*types.Var]*types.Var{start: nil}
	queue := []*types.Var{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur == target {
			var path []*types.Var
			for v := cur; v != nil; v = prev[v] {
				path = append(path, v)
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path
		}
		next := make([]*types.Var, 0, len(adj[cur]))
		for n := range adj[cur] {
			if _, seen := prev[n]; !seen {
				next = append(next, n)
			}
		}
		sort.Slice(next, func(i, j int) bool {
			a, b := next[i], next[j]
			if an, bn := sums.lockName(a), sums.lockName(b); an != bn {
				return an < bn
			}
			return a.Pos() < b.Pos()
		})
		for _, n := range next {
			prev[n] = cur
			queue = append(queue, n)
		}
	}
	return nil
}

// inModuleClosure returns the sorted import paths of every source-checked
// in-module package reachable from the pass's package, excluding itself.
func inModuleClosure(pass *Pass) []string {
	seen := map[string]bool{pass.Pkg.Path(): true}
	var out []string
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if seen[imp.Path()] {
				continue
			}
			seen[imp.Path()] = true
			if len(pass.Funcs.FuncsIn(imp.Path())) > 0 {
				out = append(out, imp.Path())
			}
			walk(imp)
		}
	}
	walk(pass.Pkg)
	sort.Strings(out)
	return out
}

// posShort renders a position as base-filename:line, for cross-file
// references inside one diagnostic message.
func posShort(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
