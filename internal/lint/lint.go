// Package lint is a small static-analysis framework plus the avfda-specific
// analyzers that machine-enforce the toolkit's determinism and typed-error
// invariants (system #21 in DESIGN.md §2).
//
// The API deliberately mirrors golang.org/x/tools/go/analysis — an Analyzer
// with a Name, Doc, and Run(*Pass), diagnostics reported through the pass —
// so the suite can migrate onto the real framework the first time the module
// is allowed an external dependency. Until then everything here is built on
// the standard library's go/ast and go/types only, which keeps `go run
// ./cmd/avlint ./...` working in offline, dependency-free environments (the
// same property the snapshot store and synthetic corpus rely on).
//
// Why these analyzers exist: the pipeline's trustworthiness rests on
// run-to-run reproducibility (parallel-vs-sequential and snapshot
// byte-identity are pinned by tests), and on typed-error classification at
// the serving boundary (PR 3 fixed a bug where transports matched
// err.Error() substrings instead of using errors.As). Tests catch those
// regressions after the fact; the analyzers reject them at review time.
//
// Suppression: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it silences that analyzer
// for that line. The reason is mandatory — an allow without one is inert.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// An Analyzer describes one invariant check. It is stateless: Run is invoked
// once per loaded package with a fresh Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -disable flags, and
	// //lint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards, shown by `avlint -list`.
	Doc string
	// Scope lists the package path suffixes (as understood by
	// Pass.PathHasSuffix) the analyzer applies to. Empty means every
	// package. Scoped analyzers gate on Pass.InScope; the scope meta-test
	// in scope_test.go fails when a package under internal/ is absent from
	// a non-empty scope without a recorded exemption, so scope lists can
	// no longer silently drift as packages are added.
	Scope []string
	// Version participates in the findings-cache key (cache.go): bump it
	// whenever the analyzer's diagnostics can change for unchanged input —
	// a new check, a reworded message, a fixed false positive — so stale
	// cached findings are invalidated instead of replayed.
	Version int
	// Run inspects one package and reports violations through the pass.
	Run func(*Pass) error
}

// A Pass carries one type-checked package to an analyzer.
type Pass struct {
	// Analyzer is the analyzer this pass belongs to.
	Analyzer *Analyzer
	// Path is the package's import path ("avfda/internal/core"). For an
	// external test package it carries the "_test" suffix.
	Path string
	// Fset resolves token positions for every file in the package.
	Fset *token.FileSet
	// Files are the package's parsed files, including in-package _test.go
	// files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type-checker's facts for Files.
	Info *types.Info
	// Funcs indexes the source of every function the loader type-checked —
	// this package's and its in-module dependencies' — for the
	// interprocedural analyzers. Nil when the package was constructed
	// without the loader; FuncIndex methods are nil-safe and the analyzers
	// then fall back to their conservative unknown-callee behavior.
	Funcs *FuncIndex

	pkg   *Package
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// IsTestFile reports whether f is a _test.go file. Analyzers that guard
// production determinism (mapiter, nondeterm, exhaustive-category) skip test
// files; errsubstr deliberately does not, because assertion code is where
// the err.Error() substring anti-pattern breeds.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// PathHasSuffix reports whether the package's import path ends with one of
// the given path suffixes (matched on whole path segments, so
// "internal/core" matches "avfda/internal/core" but not
// "avfda/internal/encore").
func (p *Pass) PathHasSuffix(suffixes ...string) bool {
	for _, s := range suffixes {
		// External test packages share their base package's invariants.
		path := strings.TrimSuffix(p.Path, "_test")
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// InScope reports whether the package falls under the analyzer's Scope. An
// empty scope means the analyzer applies everywhere.
func (p *Pass) InScope() bool {
	if len(p.Analyzer.Scope) == 0 {
		return true
	}
	return p.PathHasSuffix(p.Analyzer.Scope...)
}

// summaries returns the package's interprocedural summary cache, creating it
// on first use. Analyzers of one package run sequentially on one goroutine
// (runPackage), so the lazy init needs no lock; distinct packages each carry
// their own cache, trading a little duplicate summarization of shared
// callees for zero cross-package synchronization.
func (p *Pass) summaries() *summaries {
	if p.pkg == nil {
		return nil
	}
	if p.pkg.sums == nil {
		p.pkg.sums = newSummaries(p.Funcs)
	}
	return p.pkg.sums
}

// A Diagnostic is one reported violation, with its position already
// resolved.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos locates the violation.
	Pos token.Position
	// Message explains the violation and names the sanctioned alternative.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Timings accumulates, per analyzer name, the total wall time its Run spent
// across every package. Under parallel scheduling the per-analyzer sums can
// exceed elapsed wall clock (packages overlap); they are still the right
// trajectory metric because each analyzer's share is scheduling-independent.
type Timings map[string]time.Duration

// Run applies every analyzer to every package and returns the surviving
// diagnostics sorted by file, line, column, and analyzer name — a
// deterministic order regardless of analyzer scheduling. Packages are
// analyzed across GOMAXPROCS workers; use RunParallel to bound the pool.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunParallel(pkgs, analyzers, 0)
}

// RunParallel is Run with an explicit worker count; workers <= 0 selects
// GOMAXPROCS.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, error) {
	diags, _, err := RunTimed(pkgs, analyzers, workers)
	return diags, err
}

// RunTimed is RunParallel returning per-analyzer cumulative wall times
// alongside the diagnostics. Scheduling cannot affect the diagnostics:
// per-package results are collected by index (the first failing package in
// input order wins as the returned error) and the final sort fixes the
// diagnostic order. Timings are summed over packages, so only their
// magnitude — not the result — varies with machine load.
func RunTimed(pkgs []*Package, analyzers []*Analyzer, workers int) ([]Diagnostic, Timings, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}

	type pkgResult struct {
		diags []Diagnostic
		times Timings
		err   error
	}
	results := make([]pkgResult, len(pkgs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				diags, times, err := runPackage(pkgs[i], analyzers)
				results[i] = pkgResult{diags, times, err}
			}
		}()
	}
	for i := range pkgs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var diags []Diagnostic
	times := Timings{}
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		diags = append(diags, r.diags...)
		for name, d := range r.times {
			times[name] += d
		}
	}
	sortDiagnostics(diags)
	return diags, times, nil
}

// sortDiagnostics fixes the canonical diagnostic order — file, line,
// column, analyzer name — shared by RunTimed and the findings cache, so a
// run assembled from cached and fresh packages orders identically to a
// cold one.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// runPackage applies the analyzers to one package and filters the
// diagnostics through its //lint:allow directives.
func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, Timings, error) {
	allows := collectAllows(pkg)
	var pkgDiags []Diagnostic
	times := Timings{}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Path:     pkg.Path,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Funcs:    pkg.Funcs,
			pkg:      pkg,
			diags:    &pkgDiags,
		}
		start := time.Now()
		err := a.Run(pass)
		times[a.Name] += time.Since(start)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	var out []Diagnostic
	for _, d := range pkgDiags {
		if !allows.allowed(d) {
			out = append(out, d)
		}
	}
	return out, times, nil
}

// allowKey identifies one (file, line, analyzer) suppression.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

type allowSet map[allowKey]bool

// collectAllows scans a package's comments for //lint:allow directives. A
// directive covers its own line and the line below it, so it works both as a
// trailing comment and as a line comment above the flagged statement.
func collectAllows(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				if len(fields) < 2 {
					// No reason given: the directive is inert by design.
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				set[allowKey{pos.Filename, pos.Line, fields[0]}] = true
				set[allowKey{pos.Filename, pos.Line + 1, fields[0]}] = true
			}
		}
	}
	return set
}

func (s allowSet) allowed(d Diagnostic) bool {
	return s[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
}

// All returns the full analyzer suite in stable order: the generation-1
// AST-level analyzers, the generation-2 flow-sensitive ones built on
// internal/lint/cfg, the generation-3 interprocedural ones built on the
// module-local call graph and function summaries, and the generation-4
// module-scope concurrency ones (lock-ordering cycles, atomic/plain mixed
// access).
func All() []*Analyzer {
	return []*Analyzer{
		MapIter, ErrSubstr, NonDeterm, ExhaustiveCategory,
		LockCheck, GoroLeak, CtxFlow, HTTPResp,
		Resleak, TaintFlow, ViewLife,
		LockOrder, AtomicMix,
	}
}

// UnknownAnalyzerError reports a name that resolves to no analyzer in the
// suite — typed, so callers classify it with errors.As rather than matching
// message text (the invariant errsubstr itself enforces).
type UnknownAnalyzerError struct {
	// Name is the unresolved analyzer name.
	Name string
}

// Error implements the error interface.
func (e *UnknownAnalyzerError) Error() string {
	return fmt.Sprintf("unknown analyzer %q", e.Name)
}

// ByName resolves analyzer names (e.g. from a -disable flag) against All,
// returning an *UnknownAnalyzerError if one does not resolve.
func ByName(names []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, &UnknownAnalyzerError{Name: n}
		}
		out = append(out, a)
	}
	return out, nil
}
