package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"avfda/internal/lint/cfg"
)

// TaintFlow flags request-derived values (query parameters, path values,
// form fields, URL components) reaching a build/query sink — query.Engine
// methods, serve.Cache.Get, or a module helper whose summary forwards an
// operand into one — without passing a recognized validator first. This
// machine-enforces the PR 8 serving fix: cheap parameter validation must
// happen before the expensive study build, so a garbage ?by= can never
// cost a full pipeline run.
//
// Recognized sanitizers: the strconv parse family (a parsed int is not the
// raw string), comma-ok map lookups (`render, ok := renderers[id]` trusts
// the table, and the ok-true branch validates the key), and module
// validators — single-result bool functions whose body membership-tests an
// operand against a map (query.IsGroupColumn) — applied on their true
// branch. Values wrapped into composite literals (typed query.Filter
// carriers) are considered structured, not raw.
//
// Known false negatives: taint laundered through unknown (non-module,
// non-string-family) calls, interface dispatch, and reflection.
var TaintFlow = &Analyzer{
	Name: "taintflow",
	Doc: "flags request query/path/form values reaching query.Engine or Cache " +
		"sinks without a recognized validator (strconv parse, comma-ok map " +
		"lookup, or a bool map-membership helper) on the path",
	Run: runTaintFlow,
}

// taintMark is a bitset: bit 31 is request taint (the analyzer's bit);
// bits 0..30 attribute flow to callee operands during summary computation.
type taintMark uint32

const reqTaint taintMark = 1 << 31

type taintState map[types.Object]taintMark

// urlTaintFields are *url.URL fields that carry raw request bytes.
var urlTaintFields = map[string]bool{
	"Path": true, "RawPath": true, "RawQuery": true, "Fragment": true,
	"RawFragment": true, "Opaque": true, "Host": true,
}

// taintPropPkgs are stdlib packages whose functions transform strings and
// bytes without changing their trust level: taint flows through them.
var taintPropPkgs = map[string]bool{
	"strings": true, "bytes": true, "fmt": true, "path": true,
	"path/filepath": true, "net/url": true, "unicode/utf8": true,
}

type taintEngine struct {
	info *types.Info
	sums *summaries
	// okValidates pairs a comma-ok boolean with the objects its true
	// branch validates (the roots of the map-lookup keys).
	okValidates map[types.Object][]types.Object
}

func isURLValues(t types.Type) bool {
	return namedSuffixIs(t, "net/url", "Values")
}

// isTaintSource reports whether calling fn yields raw request-derived
// data: url.Values.Get and the *http.Request param accessors.
func isTaintSource(fn *types.Func) bool {
	return funcIs(fn, "net/url", "Values", "Get", "Encode") ||
		funcIs(fn, "net/http", "Request", "FormValue", "PostFormValue", "PathValue", "Referer", "UserAgent")
}

// exprTaint computes the taint of an expression under the current state.
func (t *taintEngine) exprTaint(e ast.Expr, s taintState) taintMark {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return s[t.info.ObjectOf(e)]
	case *ast.CallExpr:
		return t.callTaint(e, s)
	case *ast.SelectorExpr:
		if namedSuffixIs(t.info.TypeOf(e.X), "net/url", "URL") && urlTaintFields[e.Sel.Name] {
			return reqTaint
		}
		return t.exprTaint(e.X, s)
	case *ast.IndexExpr:
		if isURLValues(t.info.TypeOf(e.X)) {
			return reqTaint
		}
		return t.exprTaint(e.X, s)
	case *ast.SliceExpr:
		return t.exprTaint(e.X, s)
	case *ast.BinaryExpr:
		return t.exprTaint(e.X, s) | t.exprTaint(e.Y, s)
	case *ast.StarExpr:
		return t.exprTaint(e.X, s)
	case *ast.UnaryExpr:
		return t.exprTaint(e.X, s)
	case *ast.TypeAssertExpr:
		return t.exprTaint(e.X, s)
	}
	// Literals, composite literals (typed carriers), func literals.
	return 0
}

func (t *taintEngine) callTaint(call *ast.CallExpr, s taintState) taintMark {
	// Type conversions (string(b), []byte(s), MyString(x)) preserve the
	// bytes and the taint.
	if len(call.Args) == 1 {
		if tv, ok := t.info.Types[call.Fun]; ok && tv.IsType() {
			return t.exprTaint(call.Args[0], s)
		}
	}
	fn, args := calleeFunc(t.info, call)
	if fn == nil {
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := t.info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
				var m taintMark
				for _, a := range call.Args {
					m |= t.exprTaint(a, s)
				}
				return m
			}
		}
		return 0
	}
	if isTaintSource(fn) {
		return reqTaint
	}
	// Parsing is sanitizing: the structured result is not the raw string.
	if funcIs(fn, "strconv", "", "Atoi", "ParseInt", "ParseUint", "ParseFloat", "ParseBool") {
		return 0
	}
	if fn.Pkg() != nil && taintPropPkgs[fn.Pkg().Path()] {
		var m taintMark
		for _, a := range args {
			m |= t.exprTaint(a, s)
		}
		return m
	}
	if sum := t.sums.taint(fn); sum != nil {
		var m taintMark
		for i, p := range sum.Prop {
			if p && i < len(args) {
				m |= t.exprTaint(args[i], s)
			}
		}
		return m
	}
	// Unknown callee: assume it launders (documented false negative).
	return 0
}

// set records taint into an lvalue: plain identifiers get the mark,
// container stores contaminate the container's root.
func (t *taintEngine) set(lv ast.Expr, m taintMark, s taintState) {
	if id, ok := unparen(lv).(*ast.Ident); ok {
		obj := t.info.ObjectOf(id)
		if obj == nil {
			return
		}
		if m == 0 {
			delete(s, obj)
		} else {
			s[obj] = m
		}
		return
	}
	if m != 0 {
		if o := rootObj(t.info, lv); o != nil {
			s[o] |= m
		}
	}
}

func (t *taintEngine) assign(lhs, rhs []ast.Expr, s taintState) {
	if len(rhs) == 1 && len(lhs) == 2 {
		// Comma-ok map lookup: the value comes from our table, not the
		// request; trusted regardless of the key's taint.
		if ix, ok := unparen(rhs[0]).(*ast.IndexExpr); ok {
			if _, isMap := t.info.TypeOf(ix.X).Underlying().(*types.Map); isMap && !isURLValues(t.info.TypeOf(ix.X)) {
				t.set(lhs[0], 0, s)
				t.set(lhs[1], 0, s)
				return
			}
		}
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		m := t.exprTaint(rhs[0], s)
		for _, l := range lhs {
			t.set(l, m, s)
		}
		return
	}
	for i, l := range lhs {
		if i < len(rhs) {
			t.set(l, t.exprTaint(rhs[i], s), s)
		}
	}
}

func (t *taintEngine) transfer(n ast.Node, s taintState) taintState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		t.assign(n.Lhs, n.Rhs, s)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					t.assign(lhs, vs.Values, s)
				}
			}
		}
	case *ast.RangeStmt:
		m := t.exprTaint(n.X, s)
		for _, kv := range []ast.Expr{n.Key, n.Value} {
			if kv != nil {
				t.set(kv, m, s)
			}
		}
	}
	return s
}

// refine applies branch-edge knowledge: a true comma-ok bool or a true
// module-validator call clears the validated objects' taint.
func (t *taintEngine) refine(cond ast.Expr, taken bool, s taintState) {
	cond = unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			t.refine(c.X, !taken, s)
		}
	case *ast.BinaryExpr:
		// Both operands of a taken && (or a fallen-through ||) hold.
		if (c.Op == token.LAND && taken) || (c.Op == token.LOR && !taken) {
			t.refine(c.X, taken, s)
			t.refine(c.Y, taken, s)
		}
	case *ast.Ident:
		if !taken {
			return
		}
		for _, v := range t.okValidates[t.info.ObjectOf(c)] {
			delete(s, v)
		}
	case *ast.CallExpr:
		if !taken {
			return
		}
		fn, args := calleeFunc(t.info, c)
		if sum := t.sums.taint(fn); sum != nil {
			for i, val := range sum.Validates {
				if val && i < len(args) {
					if o := rootObj(t.info, args[i]); o != nil {
						delete(s, o)
					}
				}
			}
		}
	}
}

// collectOk records comma-ok map-lookup pairings for branch refinement.
func (t *taintEngine) collectOk(body *ast.BlockStmt) {
	t.okValidates = map[types.Object][]types.Object{}
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 2 || len(as.Rhs) != 1 {
			return true
		}
		ix, ok := unparen(as.Rhs[0]).(*ast.IndexExpr)
		if !ok {
			return true
		}
		if _, isMap := t.info.TypeOf(ix.X).Underlying().(*types.Map); !isMap || isURLValues(t.info.TypeOf(ix.X)) {
			return true
		}
		okID, ok := unparen(as.Lhs[1]).(*ast.Ident)
		if !ok || okID.Name == "_" {
			return true
		}
		okObj := t.info.ObjectOf(okID)
		keyRoot := rootObj(t.info, ix.Index)
		if okObj != nil && keyRoot != nil {
			t.okValidates[okObj] = append(t.okValidates[okObj], keyRoot)
		}
		return true
	})
}

// sinkOperands returns the callee's operand indices that feed a
// build/query sink, or nil for non-sinks.
func (t *taintEngine) sinkOperands(fn *types.Func, nops int) []int {
	if fn == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethodOn := func(pkgSuffix, recv string) bool {
		return sig != nil && sig.Recv() != nil && namedSuffixIs(sig.Recv().Type(), pkgSuffix, recv) &&
			fn.Pkg() != nil && pathSuffixMatch(fn.Pkg().Path(), pkgSuffix)
	}
	if isMethodOn("internal/query", "Engine") || (isMethodOn("internal/serve", "Cache") && fn.Name() == "Get") {
		// Every argument past the receiver.
		var out []int
		for i := 1; i < nops; i++ {
			out = append(out, i)
		}
		return out
	}
	if sum := t.sums.taint(fn); sum != nil {
		var out []int
		for i, sk := range sum.Sinks {
			if sk {
				out = append(out, i)
			}
		}
		return out
	}
	return nil
}

// exemptSinkArg reports argument types that are structured carriers, not
// raw request strings: composed query.Filter values and contexts.
func (t *taintEngine) exemptSinkArg(arg ast.Expr) bool {
	typ := t.info.TypeOf(arg)
	return namedSuffixIs(typ, "internal/query", "Filter") || isContextType(typ)
}

func (t *taintEngine) flow() cfg.Flow[taintState] {
	clone := func(s taintState) taintState {
		out := make(taintState, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	}
	return cfg.Flow[taintState]{
		Entry:    taintState{},
		Transfer: t.transfer,
		Clone:    clone,
		Join: func(a, b taintState) taintState {
			out := clone(a)
			for k, v := range b {
				out[k] |= v
			}
			return out
		},
		Equal: func(a, b taintState) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if b[k] != v {
					return false
				}
			}
			return true
		},
		Branch: func(cond ast.Expr, taken bool, s taintState) taintState {
			t.refine(cond, taken, s)
			return s
		},
	}
}

// replay walks every block's nodes with the solved entry states, invoking
// check on each node with the state in force just before it executes.
func (t *taintEngine) replay(body *ast.BlockStmt, check func(n ast.Node, s taintState)) {
	g := cfg.New(body)
	f := t.flow()
	ins := cfg.Forward(g, f)
	for _, blk := range g.Blocks {
		s, ok := ins[blk]
		if !ok {
			continue
		}
		s = f.Clone(s)
		for _, n := range blk.Nodes {
			check(n, s)
			s = t.transfer(n, s)
		}
	}
}

func runTaintFlow(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		funcBodies(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			t := &taintEngine{info: pass.Info, sums: pass.summaries()}
			t.collectOk(body)
			reported := map[token.Pos]bool{}
			t.replay(body, func(n ast.Node, s taintState) {
				scanShallow(n, func(m ast.Node) bool {
					call, ok := m.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn, args := calleeFunc(t.info, call)
					for _, i := range t.sinkOperands(fn, len(args)) {
						if i >= len(args) || t.exemptSinkArg(args[i]) {
							continue
						}
						if t.exprTaint(args[i], s)&reqTaint == 0 {
							continue
						}
						if reported[args[i].Pos()] {
							continue
						}
						reported[args[i].Pos()] = true
						pass.Reportf(args[i].Pos(), "request-derived value reaches %s without validation; check it (comma-ok lookup, strconv parse, or a bool validator) before the expensive build/query", fn.Name())
					}
					return true
				})
			})
		})
	}
	return nil
}

// A taintSummary describes how taint moves through one module function.
type taintSummary struct {
	// Prop[i] reports that operand i's taint flows into a return value.
	Prop []bool
	// Sinks[i] reports that operand i reaches a build/query sink inside.
	Sinks []bool
	// Validates[i] reports the function is a single-result bool
	// membership test of operand i against a map — its true branch proves
	// the operand a member of a fixed set.
	Validates []bool
}

func computeTaintSummary(sums *summaries, fn *types.Func, src FuncSource) *taintSummary {
	ops := operandVars(fn)
	sum := &taintSummary{
		Prop:      make([]bool, len(ops)),
		Sinks:     make([]bool, len(ops)),
		Validates: make([]bool, len(ops)),
	}
	t := &taintEngine{info: src.Info, sums: sums}
	t.collectOk(src.Decl.Body)

	entry := taintState{}
	for i, v := range ops {
		if i >= 31 {
			break
		}
		entry[v] = 1 << uint(i)
	}
	markBits := func(m taintMark, dst []bool) {
		for i := range dst {
			if i < 31 && m&(1<<uint(i)) != 0 {
				dst[i] = true
			}
		}
	}
	g := cfg.New(src.Decl.Body)
	f := t.flow()
	f.Entry = entry
	ins := cfg.Forward(g, f)
	for _, blk := range g.Blocks {
		s, ok := ins[blk]
		if !ok {
			continue
		}
		s = f.Clone(s)
		for _, n := range blk.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for _, r := range ret.Results {
					markBits(t.exprTaint(r, s), sum.Prop)
				}
			}
			scanShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				cfn, args := calleeFunc(t.info, call)
				for _, i := range t.sinkOperands(cfn, len(args)) {
					if i < len(args) && !t.exemptSinkArg(args[i]) {
						markBits(t.exprTaint(args[i], s), sum.Sinks)
					}
				}
				return true
			})
			s = t.transfer(n, s)
		}
	}

	// Validator shape: single bool result, body membership-testing an
	// operand against a map.
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Results().Len() == 1 && isBoolType(sig.Results().At(0).Type()) {
		opIdx := map[types.Object]int{}
		for i, v := range ops {
			opIdx[v] = i
		}
		inspectSkipFuncLit(src.Decl.Body, func(n ast.Node) bool {
			ix, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			if _, isMap := src.Info.TypeOf(ix.X).Underlying().(*types.Map); !isMap {
				return true
			}
			if o := rootObj(src.Info, ix.Index); o != nil {
				if i, ok := opIdx[o]; ok {
					sum.Validates[i] = true
				}
			}
			return true
		})
	}
	return sum
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}
