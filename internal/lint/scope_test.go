package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// realInternalPackages walks ../../internal and returns the module-relative
// paths ("internal/...") of every directory that directly contains a
// non-test .go file, excluding fixture trees under testdata.
func realInternalPackages(t *testing.T) []string {
	t.Helper()
	root := filepath.Join("..", "..", "internal")
	var pkgs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == "testdata" {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			name := e.Name()
			if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(filepath.Join("..", ".."), path)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		t.Fatalf("walking internal/: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("found only %d internal packages (%v); the walk is broken", len(pkgs), pkgs)
	}
	return pkgs
}

// TestScopeListsCoverInternalPackages is the drift guard the scope lists
// lacked for two generations: every analyzer that declares a non-empty
// Scope must, for each real package under internal/, either include it or
// carry a recorded exemption in scopeExemptions with a reason. Adding a
// new internal package fails this test until someone decides, per scoped
// analyzer, whether the invariant applies there.
func TestScopeListsCoverInternalPackages(t *testing.T) {
	pkgs := realInternalPackages(t)
	for _, a := range All() {
		if len(a.Scope) == 0 {
			continue // runs everywhere; nothing to drift
		}
		scoped := map[string]bool{}
		for _, s := range a.Scope {
			scoped[s] = true
		}
		exempt := scopeExemptions[a.Name]
		for _, pkg := range pkgs {
			inScope := scoped[pkg]
			reason, isExempt := exempt[pkg]
			switch {
			case inScope && isExempt:
				t.Errorf("%s: %s is both in Scope and exempted (%q); pick one", a.Name, pkg, reason)
			case !inScope && !isExempt:
				t.Errorf("%s: %s is neither in Scope nor exempted; add it to the "+
					"Scope list or record an exemption in scopeExemptions with a reason",
					a.Name, pkg)
			case isExempt && strings.TrimSpace(reason) == "":
				t.Errorf("%s: exemption for %s has an empty reason", a.Name, pkg)
			}
		}
		// Stale entries: an exemption for a package that no longer exists
		// (or was never spelled correctly) is drift in the other direction.
		real := map[string]bool{}
		for _, pkg := range pkgs {
			real[pkg] = true
		}
		for pkg := range exempt {
			if !real[pkg] {
				t.Errorf("%s: exemption for %s, which is not a real internal package", a.Name, pkg)
			}
		}
	}
	// Exemptions for analyzers that don't exist or run everywhere are stale.
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	for name := range scopeExemptions {
		a, ok := byName[name]
		if !ok {
			t.Errorf("scopeExemptions entry for unknown analyzer %q", name)
			continue
		}
		if len(a.Scope) == 0 {
			t.Errorf("scopeExemptions entry for %q, which has an empty Scope and runs everywhere", name)
		}
	}
}

// TestScopeMatchingUsesSegmentBoundaries pins that InScope matching cannot
// be fooled by a package whose name merely ends with a scoped package's
// name (e.g. a future internal/reserve must not inherit internal/serve's
// scope membership).
func TestScopeMatchingUsesSegmentBoundaries(t *testing.T) {
	p := &Pass{Analyzer: &Analyzer{Scope: []string{"internal/serve"}}, Path: "avfda/internal/reserve"}
	if p.InScope() {
		t.Fatal("internal/reserve matched scope entry internal/serve")
	}
	p.Path = "avfda/internal/serve"
	if !p.InScope() {
		t.Fatal("internal/serve did not match its own scope entry")
	}
}
