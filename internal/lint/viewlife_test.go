package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestViewLife drives viewlife over mapped-view fixtures: borrows stored
// into globals, channels, goroutines, caller-visible fields, and
// retaining callees (interprocedural, via Retains summaries) are flagged;
// copies, returns, and view-internal stores are accepted.
func TestViewLife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.ViewLife, "vlife/a")
}
