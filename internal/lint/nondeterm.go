package lint

import "go/ast"

// globalRandFuncs are the math/rand package-level functions that draw from
// the process-global (unseeded or ambiently seeded) source. Constructors
// (New, NewSource, NewZipf) are allowed: they are how seed-derived
// generators get built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings, should the module ever migrate.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "N": true,
}

// NonDeterm flags ambient nondeterminism inside pipeline-stage packages
// (internal/{parse,nlp,core,synth,snapshot}): time.Now() reads and draws
// from the global math/rand source. Reproducibility is the paper's core
// contract — the same corpus and seed must yield the same consolidated
// failure DB — so stage code takes its randomness from a *rand.Rand derived
// from the study seed and its timestamps from callers (the pipeline records
// elapsed time in StageTimings, outside the stages).
var NonDeterm = &Analyzer{
	Name: "nondeterm",
	Doc: "flags time.Now() and global math/rand draws in pipeline-stage packages; " +
		"derive randomness from the study seed, inject clocks",
	// The pipeline-stage packages where all randomness must flow from the
	// study seed and all timing through injected clocks (the pipeline's
	// StageTimings): a stray wall-clock read or global-source draw makes
	// two runs of the same corpus diverge. Timing-centric packages
	// (serve, loadgen) are exempted in scope.go — wall-clock reads are
	// their feature, not a hazard.
	Scope: []string{
		"internal/parse",
		"internal/nlp",
		"internal/core",
		"internal/synth",
		"internal/snapshot",
		"internal/snapshot2",
	},
	Run: runNonDeterm,
}

func runNonDeterm(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch calleePkg(pass, call) {
			case "time":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" || sel.Sel.Name == "Until" {
					pass.Reportf(call.Pos(), "time.%s in a pipeline-stage package: wall-clock reads make runs diverge; take timestamps from the caller (StageTimings owns timing)", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[sel.Sel.Name] {
					pass.Reportf(call.Pos(), "rand.%s draws from the global source: all stage randomness must flow from the study seed via rand.New(rand.NewSource(seed))", sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
