package lint

// Call-graph plumbing for the interprocedural (generation-3) analyzers:
// static callee resolution, receiver-first operand indexing, and the
// summary scheduler that walks the module-local call graph bottom-up.
//
// The call graph is implicit: summarize(fn) recursively summarizes fn's
// callees before fn itself, memoizing per function, which visits the
// graph's SCC condensation in reverse topological order. Members of a
// multi-function SCC see their in-progress mates as unknown callees and
// fall back to the conservative summary — a must-property can never be
// proven from an unproven cycle. Unknown callees also include everything
// resolved from export data (the standard library), interface and
// func-value dispatch, and reflection; those are the suite's documented
// false-negative classes (DESIGN.md §25).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// pathSuffixMatch reports whether path ends with suffix on whole path
// segments ("internal/query" matches "avfda/internal/query" but not
// "avfda/internal/enquery"). Matching by suffix keeps the analyzers
// working against both the real module and the testdata fixture stubs.
func pathSuffixMatch(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// namedSuffixIs reports whether t (after pointer indirection) is a named
// type with the given name declared in a package whose import path ends
// with pathSuffix.
func namedSuffixIs(t types.Type, pathSuffix, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil &&
		pathSuffixMatch(obj.Pkg().Path(), pathSuffix)
}

// calleeFunc resolves a call's static callee together with its operand
// expressions in receiver-first order: for a method call x.M(a, b) it
// returns [x, a, b], aligning with operandVars of the callee. Interface
// methods resolve (their *types.Func is returned) but have no body in the
// FuncIndex, so summary lookups on them miss — the conservative path.
// Func-value and builtin calls return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) (*types.Func, []ast.Expr) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, call.Args
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil, nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn, append([]ast.Expr{fun.X}, call.Args...)
			}
			return nil, nil
		}
		// No Selection record: a package-qualified call (pkg.Func).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn, call.Args
		}
	}
	return nil, nil
}

// operandVars returns fn's operand variables receiver-first: the receiver
// (for methods) followed by the declared parameters. Indices align with
// the expressions calleeFunc returns for a call site.
func operandVars(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// funcIs matches a callee against a package import path (exact for stdlib,
// suffix for module packages), an optional receiver type name ("" for
// package-level functions), and a set of function names.
func funcIs(fn *types.Func, pkgPath, recvName string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || !pathSuffixMatch(fn.Pkg().Path(), pkgPath) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recvName == "" {
		if sig.Recv() != nil {
			return false
		}
	} else if sig.Recv() == nil || !namedSuffixIs(sig.Recv().Type(), pkgPath, recvName) {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// rootObj returns the object of the identifier at the base of a
// selector/index/slice/deref chain ("resp" for resp.Body.Close,
// "v" for v.secs[i][a:b]), or nil when the chain bottoms out in a call or
// literal.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// wholeIdentObj returns the object when e is (after parens and unary &) a
// bare identifier — the shape that transfers ownership of the whole value.
func wholeIdentObj(info *types.Info, e ast.Expr) types.Object {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
	}
	if id, ok := e.(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

// summaries caches the three per-function summary kinds for one package's
// analyzers. Analyzers of a package run sequentially on one goroutine, so
// the caches are unsynchronized; the FuncIndex behind them is shared and
// locked.
type summaries struct {
	ix *FuncIndex

	rel     map[*types.Func]*relSummary
	relBusy map[*types.Func]bool
	tnt     map[*types.Func]*taintSummary
	tntBusy map[*types.Func]bool
	brw     map[*types.Func]*borrowSummary
	brwBusy map[*types.Func]bool
	lck     map[*types.Func]*lockSummary
	lckBusy map[*types.Func]bool

	// lockNames records a stable display name per lock object, captured at
	// the first (deterministic, source-ordered) resolution of each lock.
	lockNames map[*types.Var]string
}

func newSummaries(ix *FuncIndex) *summaries {
	return &summaries{
		ix:        ix,
		rel:       map[*types.Func]*relSummary{},
		relBusy:   map[*types.Func]bool{},
		tnt:       map[*types.Func]*taintSummary{},
		tntBusy:   map[*types.Func]bool{},
		brw:       map[*types.Func]*borrowSummary{},
		brwBusy:   map[*types.Func]bool{},
		lck:       map[*types.Func]*lockSummary{},
		lckBusy:   map[*types.Func]bool{},
		lockNames: map[*types.Var]string{},
	}
}

// release returns fn's resource-release summary, or nil for unknown
// callees (no source, or an SCC mate mid-computation) — the conservative
// answer.
func (s *summaries) release(fn *types.Func) *relSummary {
	if s == nil || fn == nil {
		return nil
	}
	fn = fn.Origin()
	if sum, ok := s.rel[fn]; ok {
		return sum
	}
	if s.relBusy[fn] {
		return nil
	}
	src, ok := s.ix.Source(fn)
	if !ok {
		return nil
	}
	s.relBusy[fn] = true
	sum := computeRelSummary(s, fn, src)
	delete(s.relBusy, fn)
	s.rel[fn] = sum
	return sum
}

// taint returns fn's taint summary under the same contract as release.
func (s *summaries) taint(fn *types.Func) *taintSummary {
	if s == nil || fn == nil {
		return nil
	}
	fn = fn.Origin()
	if sum, ok := s.tnt[fn]; ok {
		return sum
	}
	if s.tntBusy[fn] {
		return nil
	}
	src, ok := s.ix.Source(fn)
	if !ok {
		return nil
	}
	s.tntBusy[fn] = true
	sum := computeTaintSummary(s, fn, src)
	delete(s.tntBusy, fn)
	s.tnt[fn] = sum
	return sum
}

// borrow returns fn's view-borrow summary under the same contract as
// release.
func (s *summaries) borrow(fn *types.Func) *borrowSummary {
	if s == nil || fn == nil {
		return nil
	}
	fn = fn.Origin()
	if sum, ok := s.brw[fn]; ok {
		return sum
	}
	if s.brwBusy[fn] {
		return nil
	}
	src, ok := s.ix.Source(fn)
	if !ok {
		return nil
	}
	s.brwBusy[fn] = true
	sum := computeBorrowSummary(s, fn, src)
	delete(s.brwBusy, fn)
	s.brw[fn] = sum
	return sum
}

// lock returns fn's lock-acquisition summary under the same contract as
// release: nil for unknown callees (no source, or an SCC mate
// mid-computation), which lockorder treats as "acquires nothing" — the
// false-negative direction, never a spurious deadlock report.
func (s *summaries) lock(fn *types.Func) *lockSummary {
	if s == nil || fn == nil {
		return nil
	}
	fn = fn.Origin()
	if sum, ok := s.lck[fn]; ok {
		return sum
	}
	if s.lckBusy[fn] {
		return nil
	}
	src, ok := s.ix.Source(fn)
	if !ok {
		return nil
	}
	s.lckBusy[fn] = true
	sum := computeLockSummary(s, fn, src)
	delete(s.lckBusy, fn)
	s.lck[fn] = sum
	return sum
}

// errNilEdge decodes a branch condition of the shape `err != nil` /
// `err == nil`: it returns the error object and whether the given edge
// outcome is the "err is non-nil" path. The stdlib (and module) contract
// this feeds: a constructor that returns a non-nil error returns a
// nil/absent resource, so no release is owed on the error path.
func errNilEdge(info *types.Info, cond ast.Expr, taken bool) (types.Object, bool) {
	be, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	x, y := unparen(be.X), unparen(be.Y)
	if isNilIdent(info, x) {
		x, y = y, x
	}
	if !isNilIdent(info, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := info.ObjectOf(id)
	if obj == nil || !isErrorType(obj.Type()) {
		return nil, false
	}
	// NEQ taken-true and EQL taken-false are the error outcomes.
	errPath := (be.Op == token.NEQ) == taken
	return obj, errPath
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}
