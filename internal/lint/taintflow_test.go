package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestTaintFlow drives taintflow over request-parameter fixtures: raw
// query/form/URL values reaching Engine sinks are flagged (including
// through module helpers, via Prop and Sinks summaries); comma-ok
// lookups, strconv parses, and the IsGroupColumn validator summary
// sanitize on their true branches.
func TestTaintFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.TaintFlow, "taint/a")
}
