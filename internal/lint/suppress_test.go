package lint_test

import (
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"avfda/internal/lint"
)

// TestAllowIsPerAnalyzer pins the suppression contract on shared lines:
// the cross fixture has three `go record(time.Now())` statements — each a
// goroleak and a nondeterm violation on one line — with a //lint:allow
// for goroleak above the first, nondeterm above the second, and nothing
// above the third. Suppressing one analyzer must not hide the other.
func TestAllowIsPerAnalyzer(t *testing.T) {
	pkgs, err := lint.LoadFixture(filepath.Join("testdata", "src"), "cross/internal/snapshot2")
	if err != nil {
		t.Fatalf("loading cross fixture: %v", err)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{lint.GoroLeak, lint.NonDeterm})
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	byLine := map[int][]string{}
	for _, d := range diags {
		byLine[d.Pos.Line] = append(byLine[d.Pos.Line], d.Analyzer)
	}
	var got []string
	for _, names := range byLine {
		sort.Strings(names)
		got = append(got, strings.Join(names, "+"))
	}
	sort.Strings(got)
	want := []string{"goroleak", "goroleak+nondeterm", "nondeterm"}
	if len(got) != len(want) {
		t.Fatalf("diagnostic line groups = %v, want %v (diags: %v)", got, want, diags)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diagnostic line groups = %v, want %v (diags: %v)", got, want, diags)
		}
	}
}
