package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestHTTPResp drives httpresp over handler fixtures: double WriteHeader,
// writes after an error response (the missing-return bug), and WriteHeader
// after a body write are flagged; guarded error paths, status-then-stream,
// one-write-per-branch, and opaque delegation are accepted.
func TestHTTPResp(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.HTTPResp, "hresp/a")
}
