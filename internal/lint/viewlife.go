package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"avfda/internal/lint/cfg"
)

// ViewLife flags mapped snapshot2.View bytes escaping the view's release
// scope — the SIGBUS-after-evict class: a []byte (or a container of them)
// borrowed from a memory-mapped view and stored somewhere that outlives
// the view (a package-level variable, a channel, a spawned goroutine, a
// caller-visible field) dangles the moment the cache evicts and unmaps the
// view. Until now only the churn test pinned this; the analyzer rejects it
// at review time.
//
// Borrows are slice- or map-typed reads off a View (fields, sec-style
// accessor methods) and module calls whose summary says the result aliases
// a View operand's mapped bytes (parsePostings). Copies break the borrow:
// string(...) conversions, append with ..., bytes/strings/slices.Clone,
// and the copy builtin. Storing a borrow into the view's own fields is
// fine — they die together. Returning a borrow is fine — the caller
// inherits it through the callee's Borrows summary. Unknown callees are
// assumed to copy (a documented false negative, never a false positive).
var ViewLife = &Analyzer{
	Name: "viewlife",
	Doc: "flags mapped snapshot2.View bytes stored beyond the view's release " +
		"scope (package-level vars, channels, goroutines, caller-visible " +
		"fields) — the SIGBUS-after-evict class; copy before storing",
	Run: runViewLife,
}

// borrowMark is a bitset like taintMark: bit 31 marks bytes borrowed from
// a view in the current frame; bits 0..30 attribute borrows to operands
// during summary computation.
type borrowMark uint32

const viewBorrow borrowMark = 1 << 31

type borrowState map[types.Object]borrowMark

type borrowEngine struct {
	info *types.Info
	sums *summaries
	// params are the current function's parameters and receiver — the
	// caller-visible roots a borrow must not be stored under (unless the
	// root is itself a View).
	params map[types.Object]bool
	pkg    *types.Package
}

func isViewType(t types.Type) bool {
	return namedSuffixIs(t, "internal/snapshot2", "View")
}

// aliasesBytes reports whether a value of type t can alias mapped memory:
// slices and maps (whose values may hold slice headers). Strings are
// excluded — every string(...) materialization copies — as are struct
// pointers and interfaces (heap-built wrappers like query.Engine own
// copies or manage the view's lifetime themselves).
func aliasesBytes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	}
	return false
}

// exprBorrow computes the borrow marks of an expression.
func (b *borrowEngine) exprBorrow(e ast.Expr, s borrowState) borrowMark {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return s[b.info.ObjectOf(e)]
	case *ast.SelectorExpr:
		m := b.exprBorrow(e.X, s)
		if isViewType(b.info.TypeOf(e.X)) && aliasesBytes(b.info.TypeOf(e)) {
			m |= viewBorrow | s[rootObj(b.info, e.X)]
		}
		return m
	case *ast.IndexExpr:
		return b.exprBorrow(e.X, s)
	case *ast.SliceExpr:
		return b.exprBorrow(e.X, s)
	case *ast.StarExpr:
		return b.exprBorrow(e.X, s)
	case *ast.UnaryExpr:
		return b.exprBorrow(e.X, s)
	case *ast.CallExpr:
		return b.callBorrow(e, s)
	case *ast.CompositeLit:
		var m borrowMark
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			m |= b.exprBorrow(el, s)
		}
		return m
	}
	// Literals, binary string concatenation (copies).
	return 0
}

func (b *borrowEngine) callBorrow(call *ast.CallExpr, s borrowState) borrowMark {
	// Conversions: string(x) copies; slice-to-slice conversions alias.
	if len(call.Args) == 1 {
		if tv, ok := b.info.Types[call.Fun]; ok && tv.IsType() {
			if bas, ok := tv.Type.Underlying().(*types.Basic); ok && bas.Info()&types.IsString != 0 {
				return 0
			}
			return b.exprBorrow(call.Args[0], s)
		}
	}
	fn, args := calleeFunc(b.info, call)
	if fn == nil {
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if bi, ok := b.info.Uses[id].(*types.Builtin); ok && bi.Name() == "append" {
				if call.Ellipsis.IsValid() {
					// append(dst, src...) copies src's elements; the
					// result aliases only dst's backing array.
					return b.exprBorrow(call.Args[0], s)
				}
				var m borrowMark
				for _, a := range call.Args {
					m |= b.exprBorrow(a, s)
				}
				return m
			}
		}
		return 0
	}
	if funcIs(fn, "bytes", "", "Clone") || funcIs(fn, "strings", "", "Clone") || funcIs(fn, "slices", "", "Clone") {
		return 0
	}
	// View accessor methods handing out mapped sections.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
		isViewType(sig.Recv().Type()) && sig.Results().Len() == 1 &&
		aliasesBytes(sig.Results().At(0).Type()) && len(args) > 0 {
		return viewBorrow | b.exprBorrow(args[0], s) | s[rootObj(b.info, args[0])]
	}
	if sum := b.sums.borrow(fn); sum != nil {
		var m borrowMark
		for i, br := range sum.Borrows {
			if br && i < len(args) {
				m |= b.exprBorrow(args[i], s)
				if isViewType(b.info.TypeOf(args[i])) {
					m |= viewBorrow
					m |= s[rootObj(b.info, args[i])]
				}
			}
		}
		return m
	}
	// Unknown callees are assumed to copy what they need.
	return 0
}

// storeViolation classifies an lvalue that must not receive borrowed
// bytes, returning a description or "".
func (b *borrowEngine) storeViolation(lv ast.Expr) string {
	if id, ok := unparen(lv).(*ast.Ident); ok {
		obj := b.info.ObjectOf(id)
		if obj != nil && b.pkg != nil && obj.Parent() == b.pkg.Scope() {
			return "a package-level variable"
		}
		return ""
	}
	root := rootObj(b.info, lv)
	if root == nil {
		return ""
	}
	if obj, ok := root.(*types.Var); ok && b.params[obj] && !isViewType(obj.Type()) {
		return "a caller-visible field"
	}
	if b.pkg != nil && root.Parent() == b.pkg.Scope() {
		return "a package-level structure"
	}
	return ""
}

func (b *borrowEngine) transfer(n ast.Node, s borrowState) borrowState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		b.assign(n.Lhs, n.Rhs, s)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					b.assign(lhs, vs.Values, s)
				}
			}
		}
	case *ast.RangeStmt:
		m := b.exprBorrow(n.X, s)
		for _, kv := range []ast.Expr{n.Key, n.Value} {
			if kv != nil && m != 0 {
				b.setMark(kv, m, s)
			}
		}
	}
	return s
}

func (b *borrowEngine) setMark(lv ast.Expr, m borrowMark, s borrowState) {
	if id, ok := unparen(lv).(*ast.Ident); ok {
		obj := b.info.ObjectOf(id)
		if obj == nil {
			return
		}
		if m == 0 {
			delete(s, obj)
		} else {
			s[obj] = m
		}
		return
	}
	if m != 0 {
		if o := rootObj(b.info, lv); o != nil {
			s[o] |= m
		}
	}
}

func (b *borrowEngine) assign(lhs, rhs []ast.Expr, s borrowState) {
	if len(rhs) == 1 && len(lhs) > 1 {
		m := b.exprBorrow(rhs[0], s)
		for _, l := range lhs {
			b.setMark(l, m, s)
		}
		return
	}
	for i, l := range lhs {
		if i < len(rhs) {
			b.setMark(l, b.exprBorrow(rhs[i], s), s)
		}
	}
}

func (b *borrowEngine) flow() cfg.Flow[borrowState] {
	clone := func(s borrowState) borrowState {
		out := make(borrowState, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	}
	return cfg.Flow[borrowState]{
		Entry:    borrowState{},
		Transfer: b.transfer,
		Clone:    clone,
		Join: func(a, c borrowState) borrowState {
			out := clone(a)
			for k, v := range c {
				out[k] |= v
			}
			return out
		},
		Equal: func(a, c borrowState) bool {
			if len(a) != len(c) {
				return false
			}
			for k, v := range a {
				if c[k] != v {
					return false
				}
			}
			return true
		},
	}
}

// checkNode reports escapes of borrowed bytes under the pre-state s; when
// retain is non-nil it records operand attribution bits instead of
// reporting (summary mode).
func (b *borrowEngine) checkNode(pass *Pass, n ast.Node, s borrowState, reported map[token.Pos]bool, retain func(borrowMark)) {
	report := func(pos token.Pos, m borrowMark, what string) {
		if m == 0 {
			return
		}
		if retain != nil {
			retain(m)
			return
		}
		if m&viewBorrow == 0 || reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, "mapped view bytes stored in %s outlive the view's release scope and dangle after cache eviction; copy them first", what)
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		for i, l := range n.Lhs {
			what := b.storeViolation(l)
			if what == "" {
				continue
			}
			var m borrowMark
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				m = b.exprBorrow(n.Rhs[0], s)
			} else if i < len(n.Rhs) {
				m = b.exprBorrow(n.Rhs[i], s)
			}
			report(l.Pos(), m, what)
		}
	case *ast.SendStmt:
		report(n.Value.Pos(), b.exprBorrow(n.Value, s), "a channel send")
	case *ast.GoStmt:
		var m borrowMark
		ast.Inspect(n, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				m |= s[b.info.ObjectOf(id)]
			}
			return true
		})
		report(n.Pos(), m, "a goroutine capture")
	default:
		scanShallow(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn, args := calleeFunc(b.info, call)
			if sum := b.sums.borrow(fn); sum != nil {
				for i, rt := range sum.Retains {
					if rt && i < len(args) {
						report(args[i].Pos(), b.exprBorrow(args[i], s), "a retaining callee")
					}
				}
			}
			return true
		})
	}
}

// checkFunc analyzes one function frame.
func (b *borrowEngine) checkFunc(pass *Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	f := b.flow()
	ins := cfg.Forward(g, f)
	reported := map[token.Pos]bool{}
	for _, blk := range g.Blocks {
		s, ok := ins[blk]
		if !ok {
			continue
		}
		s = f.Clone(s)
		for _, n := range blk.Nodes {
			b.checkNode(pass, n, s, reported, nil)
			s = b.transfer(n, s)
		}
	}
}

// frameParams collects the caller-visible roots of a function: receiver
// and parameters.
func frameParams(info *types.Info, recv *ast.FieldList, ft *ast.FuncType) map[types.Object]bool {
	params := map[types.Object]bool{}
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if o := info.ObjectOf(name); o != nil {
					params[o] = true
				}
			}
		}
	}
	addList(recv)
	addList(ft.Params)
	return params
}

func runViewLife(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var recv *ast.FieldList
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				recv, ft, body = n.Recv, n.Type, n.Body
			case *ast.FuncLit:
				ft, body = n.Type, n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			b := &borrowEngine{
				info:   pass.Info,
				sums:   pass.summaries(),
				params: frameParams(pass.Info, recv, ft),
				pkg:    pass.Pkg,
			}
			b.checkFunc(pass, body)
			return true
		})
	}
	return nil
}

// A borrowSummary describes how mapped bytes move through one module
// function.
type borrowSummary struct {
	// Borrows[i] reports that the result aliases operand i's mapped
	// bytes (View accessors, parsers returning index structures over the
	// mapped payload).
	Borrows []bool
	// Retains[i] reports that operand i's bytes are stored beyond the
	// call (the violation, pushed to the call site).
	Retains []bool
}

func computeBorrowSummary(sums *summaries, fn *types.Func, src FuncSource) *borrowSummary {
	ops := operandVars(fn)
	sum := &borrowSummary{
		Borrows: make([]bool, len(ops)),
		Retains: make([]bool, len(ops)),
	}
	decl := src.Decl
	b := &borrowEngine{
		info:   src.Info,
		sums:   sums,
		params: frameParams(src.Info, decl.Recv, decl.Type),
		pkg:    fn.Pkg(),
	}

	entry := borrowState{}
	for i, v := range ops {
		if i >= 31 {
			break
		}
		if aliasesBytes(v.Type()) || isViewType(v.Type()) {
			entry[v] = 1 << uint(i)
		}
	}
	markBits := func(m borrowMark, dst []bool) {
		for i := range dst {
			if i < 31 && m&(1<<uint(i)) != 0 {
				dst[i] = true
			}
		}
	}

	g := cfg.New(decl.Body)
	f := b.flow()
	f.Entry = entry
	ins := cfg.Forward(g, f)
	for _, blk := range g.Blocks {
		s, ok := ins[blk]
		if !ok {
			continue
		}
		s = f.Clone(s)
		for _, n := range blk.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				for _, r := range ret.Results {
					markBits(b.exprBorrow(r, s), sum.Borrows)
				}
			}
			b.checkNode(nil, n, s, nil, func(m borrowMark) { markBits(m, sum.Retains) })
			s = b.transfer(n, s)
		}
	}
	return sum
}
