// Package analysistest runs lint analyzers over testdata fixtures and
// checks their diagnostics against `// want "regexp"` comments, following
// the golang.org/x/tools/go/analysis/analysistest conventions: fixtures
// live under testdata/src/<importpath>, and every diagnostic must be
// announced by a want comment on its line (and vice versa).
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"avfda/internal/lint"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// wantRx matches one quoted expectation in a want comment; both Go string
// syntaxes are accepted, so fixtures can backquote regexps.
var wantRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// commentRx matches a whole want comment.
var commentRx = regexp.MustCompile("//\\s*want\\s+((?:\"|`).*)")

// expectation is one want comment: a diagnostic matching rx must appear at
// file:line.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

// Run loads each fixture package path under testdata/src, applies the
// analyzer, and reports mismatches between diagnostics and want comments
// through t.
func Run(t *testing.T, testdata string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := lint.LoadFixture(filepath.Join(testdata, "src"), paths...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	diags, err := lint.Run(pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := commentRx.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range wantRx.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.rx)
		}
	}
}
