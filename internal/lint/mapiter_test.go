package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestMapIter drives the mapiter analyzer over fixtures containing both
// flagged patterns (writes and unsorted appends in map-iteration order
// inside a determinism-critical package) and accepted ones (the sorted-keys
// idiom, per-key appends, pure aggregation, a //lint:allow escape, and the
// same code in a non-critical package).
func TestMapIter(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.MapIter,
		"det/internal/core", "det/internal/mission")
}
