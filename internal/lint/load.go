// Package loading for avlint.
//
// The loader type-checks packages with the standard library only, which
// forces an unusual but fully offline strategy:
//
//   - Standard-library imports resolve through compiled export data located
//     by a single `go list -export -json std` invocation (the build cache
//     serves it without network access).
//   - In-module packages ("avfda/...") are type-checked from source,
//     recursively and memoized, so analyzers see real types.Info for any
//     dependency they care about (e.g. ontology.Category).
//   - Analyzer test fixtures live under testdata/src/<importpath> — the
//     go/analysis analysistest convention — and resolve fixture-root
//     imports first, so a fixture can stub "avfda/internal/ontology".
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// A Package is one loaded, type-checked unit of analysis.
type Package struct {
	// Path is the import path; external test packages get a "_test" suffix.
	Path string
	// Dir is the directory the package's files live in.
	Dir string
	// Fset, Files, Types, Info mirror the Pass fields documented in lint.go.
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Funcs indexes every function declaration the loader type-checked from
	// source — this package's and its in-module dependencies' — for the
	// interprocedural (generation-3) analyzers. Shared by all packages of
	// one Load call.
	Funcs *FuncIndex

	// sums lazily caches this package's interprocedural summaries. The
	// analyzers of one package run sequentially (runPackage), so no lock.
	sums *summaries
}

// FuncSource is one function declaration with the typing context it was
// checked under.
type FuncSource struct {
	// Decl is the declaration; Decl.Body is non-nil (bodyless declarations
	// are not indexed).
	Decl *ast.FuncDecl
	// Info holds the type-checker's facts for the declaring package.
	Info *types.Info
	// Path is the declaring package's import path.
	Path string
}

// A FuncIndex maps function objects to their source declarations across
// everything one loader type-checked from source. Functions that resolved
// through compiled export data (the standard library) are absent — callers
// treat a miss as an unknown callee and fall back to conservative
// assumptions. Lookups are safe for concurrent use.
type FuncIndex struct {
	mu    sync.RWMutex
	funcs map[*types.Func]FuncSource
	// paths lists each package's indexed functions in declaration order,
	// so module-scope analyzers (lockorder, atomicmix) can iterate every
	// source-checked function of a dependency deterministically.
	paths map[string][]*types.Func
}

func newFuncIndex() *FuncIndex {
	return &FuncIndex{
		funcs: map[*types.Func]FuncSource{},
		paths: map[string][]*types.Func{},
	}
}

// FuncsIn returns the indexed functions declared in the package with the
// given import path, in declaration (file, source) order. Nil when the
// path was not source-checked by this loader.
func (ix *FuncIndex) FuncsIn(path string) []*types.Func {
	if ix == nil {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.paths[path]
}

// Source returns the declaration of fn, if the loader checked it from
// source. Instantiated generics resolve through their origin.
func (ix *FuncIndex) Source(fn *types.Func) (FuncSource, bool) {
	if ix == nil || fn == nil {
		return FuncSource{}, false
	}
	fn = fn.Origin()
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	src, ok := ix.funcs[fn]
	return src, ok
}

// record indexes every FuncDecl with a body in files, resolving each
// through info's Defs.
func (ix *FuncIndex) record(path string, files []*ast.File, info *types.Info) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
				ix.funcs[fn] = FuncSource{Decl: fd, Info: info, Path: path}
				ix.paths[path] = append(ix.paths[path], fn)
			}
		}
	}
}

// listedPkg is the subset of `go list -json` output the loader and the
// findings cache consume.
type listedPkg struct {
	ImportPath   string
	Dir          string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Standard     bool
}

// stdExports caches the stdlib export-data listing process-wide: `go list
// -export -json std` costs a subprocess plus a full stdlib walk, and every
// loader (one per LoadModule/LoadFixture call — the analyzer fixture tests
// alone create dozens) needs the identical answer.
var stdExports = sync.OnceValues(func() (map[string]string, error) {
	out, err := exec.Command("go", "list", "-export", "-json=ImportPath,Export", "std").Output()
	if err != nil {
		return nil, fmt.Errorf("lint: listing stdlib export data: %w", err)
	}
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
})

// importFlight is one in-progress or completed dependency resolution:
// the first goroutine to request a path does the work, later requesters
// wait on done and share the result.
type importFlight struct {
	done chan struct{}
	pkg  *types.Package
	err  error
}

// loader resolves imports for one Load call. Import is safe for concurrent
// use: per-path flights deduplicate work, the token.FileSet is internally
// synchronized, and the gc export-data importer (whose package map is not
// thread-safe) is serialized behind gcMu.
type loader struct {
	fset *token.FileSet
	// fixtureRoot, when non-empty, is a GOPATH-style src directory whose
	// packages shadow everything else (analysistest fixtures).
	fixtureRoot string
	// listed maps import paths to their go-list records for source
	// type-checking of in-module dependencies. Read-only after LoadModule's
	// setup phase.
	listed map[string]listedPkg
	// exports maps import paths to compiled export-data files (shared,
	// read-only, from stdExports).
	exports map[string]string

	// mu guards flights.
	mu      sync.Mutex
	flights map[string]*importFlight

	// gcMu serializes the gc importer, which memoizes in an unsynchronized
	// map.
	gcMu sync.Mutex
	gc   types.Importer

	// funcs indexes every source-checked function declaration (targets and
	// in-module dependencies) for the interprocedural analyzers.
	funcs *FuncIndex
}

func newLoader(fixtureRoot string) (*loader, error) {
	exports, err := stdExports()
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:        token.NewFileSet(),
		fixtureRoot: fixtureRoot,
		listed:      map[string]listedPkg{},
		exports:     exports,
		flights:     map[string]*importFlight{},
		funcs:       newFuncIndex(),
	}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})
	return l, nil
}

// Import implements types.Importer for dependency resolution during source
// type-checking: fixture root first, then in-module source, then stdlib
// export data. Concurrent imports of the same path coalesce onto one
// flight.
func (l *loader) Import(path string) (*types.Package, error) {
	l.mu.Lock()
	if fl, ok := l.flights[path]; ok {
		l.mu.Unlock()
		<-fl.done
		return fl.pkg, fl.err
	}
	fl := &importFlight{done: make(chan struct{})}
	l.flights[path] = fl
	l.mu.Unlock()

	fl.pkg, fl.err = l.importUncached(path)
	close(fl.done)
	return fl.pkg, fl.err
}

func (l *loader) importUncached(path string) (*types.Package, error) {
	if l.fixtureRoot != "" {
		dir := filepath.Join(l.fixtureRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return l.checkDir(path, dir)
		}
	}
	if lp, ok := l.listed[path]; ok && !lp.Standard {
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		return l.checkSource(path, files)
	}
	l.gcMu.Lock()
	defer l.gcMu.Unlock()
	return l.gc.Import(path)
}

// checkDir source-checks every non-test .go file in dir as package path.
func (l *loader) checkDir(path, dir string) (*types.Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return l.checkSource(path, files)
}

// checkSource type-checks files as the dependency package path (memoization
// happens at the flight layer in Import). Dependencies keep full types.Info
// and land in the function index: the interprocedural analyzers summarize
// callee bodies in any in-module package, not just the analysis targets.
func (l *loader) checkSource(path string, files []string) (*types.Package, error) {
	asts, err := l.parse(files)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking dependency %s: %w", path, err)
	}
	l.funcs.record(path, asts, info)
	return pkg, nil
}

// newInfo allocates the types.Info map set the analyzers and summaries
// consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

func (l *loader) parse(files []string) ([]*ast.File, error) {
	var asts []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		asts = append(asts, af)
	}
	return asts, nil
}

// check type-checks a target package (with full types.Info) from the given
// files.
func (l *loader) check(path, dir string, files []string) (*Package, error) {
	asts, err := l.parse(files)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, asts, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	l.funcs.record(path, asts, info)
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: asts,
		Types: tpkg,
		Info:  info,
		Funcs: l.funcs,
	}, nil
}

// LoadModule loads the packages matching the go-list patterns (typically
// "./...") from the module rooted at or above dir, type-checking each
// together with its in-package test files; external (_test package) test
// files become a separate *Package with a "_test" path suffix. Targets are
// type-checked across GOMAXPROCS workers; use LoadModuleParallel to bound
// the pool.
func LoadModule(dir string, patterns ...string) ([]*Package, error) {
	return LoadModuleParallel(dir, 0, patterns...)
}

// LoadModuleParallel is LoadModule with an explicit worker count for the
// target type-checking pool; workers <= 0 selects GOMAXPROCS. Results are
// in target order regardless of scheduling, and a target that fails to
// type-check always surfaces as an error (the first such, in target order)
// — never as a silently missing package.
func LoadModuleParallel(dir string, workers int, patterns ...string) ([]*Package, error) {
	l, err := newLoader("")
	if err != nil {
		return nil, err
	}

	// The two go-list invocations are independent; overlap them.
	type listResult struct {
		pkgs []listedPkg
		err  error
	}
	depc := make(chan listResult, 1)
	go func() {
		// Resolution set: every non-stdlib dependency reachable from the
		// targets, including test-only dependencies (-deps -test).
		pkgs, err := goList(dir, append([]string{"-deps", "-test", "-json=ImportPath,Dir,GoFiles,Standard"}, patterns...))
		depc <- listResult{pkgs, err}
	}()
	// Targets: the packages the patterns name.
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles"}, patterns...))
	dep := <-depc
	if err != nil {
		return nil, err
	}
	if dep.err != nil {
		return nil, dep.err
	}
	// Test-variant entries ("pkg [pkg.test]", "pkg.test") are folded onto
	// their base import path; the base entry wins when both appear.
	for _, p := range dep.pkgs {
		base, _, _ := strings.Cut(p.ImportPath, " ")
		if strings.HasSuffix(base, ".test") {
			continue
		}
		if _, ok := l.listed[base]; ok {
			continue
		}
		p.ImportPath = base
		l.listed[base] = p
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(targets) {
		workers = len(targets)
	}
	if workers < 1 {
		workers = 1
	}

	// Fan the targets across the pool. results is indexed by target so the
	// output order (and the choice of which error wins) is deterministic.
	type targetResult struct {
		pkgs []*Package
		err  error
	}
	results := make([]targetResult, len(targets))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pkgs, err := l.checkTarget(targets[i])
				results[i] = targetResult{pkgs, err}
			}
		}()
	}
	for i := range targets {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var pkgs []*Package
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		pkgs = append(pkgs, r.pkgs...)
	}
	return pkgs, nil
}

// checkTarget type-checks one go-list target: the package with its
// in-package test files, plus the external test package when present.
func (l *loader) checkTarget(t listedPkg) ([]*Package, error) {
	var out []*Package
	files := make([]string, 0, len(t.GoFiles)+len(t.TestGoFiles))
	for _, f := range append(append([]string{}, t.GoFiles...), t.TestGoFiles...) {
		files = append(files, filepath.Join(t.Dir, f))
	}
	if len(files) > 0 {
		pkg, err := l.check(t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(t.XTestGoFiles) > 0 {
		files = files[:0]
		for _, f := range t.XTestGoFiles {
			files = append(files, filepath.Join(t.Dir, f))
		}
		pkg, err := l.check(t.ImportPath+"_test", t.Dir, files)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadFixture loads analyzer test fixtures: each path is resolved as
// root/<path> (the analysistest testdata/src convention), and imports
// between fixture packages resolve under root before anything else.
func LoadFixture(root string, paths ...string) ([]*Package, error) {
	l, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, path := range paths {
		dir := filepath.Join(root, filepath.FromSlash(path))
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: fixture %s: %w", path, err)
		}
		var files []string
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				files = append(files, filepath.Join(dir, e.Name()))
			}
		}
		sort.Strings(files)
		pkg, err := l.check(path, dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list` in dir and decodes its JSON stream.
func goList(dir string, args []string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
