package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestCtxFlow drives ctxflow over the scoped serve and pipeline fixtures
// (Background/TODO discarding an in-scope ctx — including inside closures —
// and roots minted at ctx-accepting call sites) plus an out-of-scope
// package where process roots are legitimate.
func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.CtxFlow,
		"cflow/internal/serve", "cflow/internal/pipeline", "cflow/internal/other")
}
