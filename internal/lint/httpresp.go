package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"avfda/internal/lint/cfg"
)

// HTTPResp checks every function that takes an http.ResponseWriter by
// dataflow over its CFG, tracking what has already been written to the
// response on each path:
//
//   - a second WriteHeader after a status is already committed (the
//     "superfluous response.WriteHeader" runtime warning, promoted to a
//     lint error);
//   - any response write after an error response — the missing-`return`
//     bug, where a handler writes a 4xx/5xx and falls through to the
//     success path, corrupting the body;
//   - WriteHeader after a body write, which is a silent no-op (the first
//     body write committed a 200).
//
// Status writes are classified through constants: WriteHeader or a helper
// receiving an int constant >= 400 is an error response, < 400 a success
// header. Helpers that take the writer plus an error value (writeError-
// style) count as error responses. Calls that pass the writer but match no
// rule (sub-handlers, middleware next.ServeHTTP) are treated as opaque so
// delegation is never flagged. Body writes after a non-error header are
// the streaming idiom and accepted.
var HTTPResp = &Analyzer{
	Name: "httpresp",
	Doc: "flags double WriteHeader, response writes after an error response (missing return), " +
		"and WriteHeader after a body write in http.ResponseWriter functions",
	Run: runHTTPResp,
}

// respState records, per path, the earliest position of each response-write
// kind (token.NoPos when the kind has not happened).
type respState struct {
	header token.Pos // non-error WriteHeader
	errorW token.Pos // error response (status >= 400 or error-arg helper)
	full   token.Pos // complete non-error response (redirect, 2xx helper)
	body   token.Pos // raw body write
}

// committed reports the earliest position at which any status was
// committed, or NoPos.
func (s respState) committed() token.Pos {
	return minPos(minPos(s.header, s.errorW), minPos(s.full, s.body))
}

func minPos(a, b token.Pos) token.Pos {
	if a == token.NoPos {
		return b
	}
	if b == token.NoPos {
		return a
	}
	if b < a {
		return b
	}
	return a
}

func runHTTPResp(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		funcBodies(f, func(_ string, ft *ast.FuncType, body *ast.BlockStmt) {
			if hasRespWriterParam(pass, ft) {
				checkRespWrites(pass, body)
			}
		})
	}
	return nil
}

func hasRespWriterParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isResponseWriter(pass.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// respWrite classifies one call's effect on the response.
type respWrite int

const (
	respNone   respWrite = iota
	respHeader           // non-error status commit
	respError            // error response
	respFull             // complete non-error response
	respBody             // raw body bytes
)

func checkRespWrites(pass *Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	flow := cfg.Flow[respState]{
		Entry: respState{},
		Transfer: func(n ast.Node, s respState) respState {
			scanShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch classifyRespWrite(pass, call) {
				case respHeader:
					s.header = minPos(s.header, call.Pos())
				case respError:
					s.errorW = minPos(s.errorW, call.Pos())
				case respFull:
					s.full = minPos(s.full, call.Pos())
				case respBody:
					s.body = minPos(s.body, call.Pos())
				}
				return true
			})
			return s
		},
		Join: func(a, b respState) respState {
			return respState{
				header: minPos(a.header, b.header),
				errorW: minPos(a.errorW, b.errorW),
				full:   minPos(a.full, b.full),
				body:   minPos(a.body, b.body),
			}
		},
		Equal: func(a, b respState) bool { return a == b },
		Clone: func(s respState) respState { return s },
	}
	in := cfg.Forward(g, flow)

	// Replay: check each write against the state before it.
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, blk := range g.Blocks {
		s, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		for _, n := range blk.Nodes {
			scanShallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind := classifyRespWrite(pass, call)
				if kind == respNone {
					return true
				}
				line := func(p token.Pos) int { return pass.Fset.Position(p).Line }
				switch kind {
				case respHeader:
					if p := s.committed(); p != token.NoPos {
						if s.body != token.NoPos && s.header == token.NoPos && s.errorW == token.NoPos && s.full == token.NoPos {
							report(call.Pos(), "WriteHeader after a body write (line %d) is a no-op; the first write committed the status", line(s.body))
						} else {
							report(call.Pos(), "duplicate WriteHeader: a status was already committed at line %d", line(p))
						}
					}
				case respError, respFull:
					if s.errorW != token.NoPos {
						report(call.Pos(), "response written after an error response at line %d; missing `return` after the error write", line(s.errorW))
					} else if s.full != token.NoPos {
						report(call.Pos(), "second response written after the response at line %d; missing `return`", line(s.full))
					}
				case respBody:
					if s.errorW != token.NoPos {
						report(call.Pos(), "body write after an error response at line %d; missing `return` after the error write", line(s.errorW))
					}
				}
				return true
			})
			s = flow.Transfer(n, s)
		}
	}
}

// classifyRespWrite maps a call to its response effect. Calls that mention
// a ResponseWriter but match no rule are respNone (opaque delegation).
func classifyRespWrite(pass *Pass, call *ast.CallExpr) respWrite {
	// Methods on the writer itself.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isResponseWriter(pass.Info.TypeOf(sel.X)) {
		switch sel.Sel.Name {
		case "WriteHeader":
			if len(call.Args) == 1 {
				if code, isConst := constIntValue(pass, call.Args[0]); isConst && code >= 400 {
					return respError
				}
			}
			return respHeader
		case "Write", "WriteString":
			return respBody
		}
		return respNone
	}
	// net/http package helpers with well-known semantics.
	switch calleePkg(pass, call) {
	case "net/http":
		switch call.Fun.(*ast.SelectorExpr).Sel.Name {
		case "Error", "NotFound":
			return respError
		case "Redirect", "ServeContent", "ServeFile":
			return respFull
		}
		return respNone
	case "fmt":
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Fprint", "Fprintf", "Fprintln":
				if len(call.Args) > 0 && isResponseWriter(pass.Info.TypeOf(call.Args[0])) {
					return respBody
				}
			}
		}
		return respNone
	case "io":
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "WriteString", "Copy":
				if len(call.Args) > 0 && isResponseWriter(pass.Info.TypeOf(call.Args[0])) {
					return respBody
				}
			}
		}
		return respNone
	}
	// writeError/writeJSON-style helpers: the writer plus a status constant
	// or an error value.
	passesWriter := false
	for _, arg := range call.Args {
		if isResponseWriter(pass.Info.TypeOf(arg)) {
			passesWriter = true
			break
		}
	}
	if !passesWriter {
		return respNone
	}
	for _, arg := range call.Args {
		if code, isConst := constIntValue(pass, arg); isConst && code >= 100 && code < 600 {
			if code >= 400 {
				return respError
			}
			return respFull
		}
	}
	for _, arg := range call.Args {
		if isErrorValue(pass, arg) {
			return respError
		}
	}
	return respNone
}

// isErrorValue reports whether e's static type implements the error
// interface.
func isErrorValue(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface)
}
