package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"avfda/internal/lint/cfg"
)

// LockCheck walks every function body's control-flow graph tracking which
// sync.Mutex / sync.RWMutex receivers are held at each program point, and
// reports two violation classes:
//
//   - a lock acquired on some path but not released (directly or by a
//     deferred unlock) before the function exits — the partial-unlock bug
//     that deadlocks the next caller;
//   - a blocking operation — channel send/receive, range over a channel,
//     time.Sleep, WaitGroup.Wait, a call whose signature accepts a
//     context.Context, or I/O through an interface-typed writer — executed
//     while any lock is held, the singleflight-cache bug class: the lock
//     outlives its critical section and serializes slow I/O.
//
// The accepted idioms: release before blocking (snapshot shared state under
// the lock, do the slow work outside), and `defer mu.Unlock()` immediately
// after the acquire. Sends/receives inside a `select` with a `default`
// clause are non-blocking and not flagged. Goroutine bodies launched with
// `go` run on their own stack and are analyzed as their own frames.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flags Mutex/RWMutex locks not released on every path and blocking calls " +
		"(channel ops, ctx-accepting callees, interface-writer I/O) made while a lock is held",
	Run: runLockCheck,
}

// lockKey identifies one acquisition: the receiver expression's source text,
// the lock kind ('W' for Lock, 'R' for RLock), and the acquire site. Keeping
// the site in the key lets two acquisitions of the same mutex on different
// paths report independently.
type lockKey struct {
	expr string
	kind byte
	pos  token.Pos
}

// heldLock is the per-acquisition fact: deferred means an unlock for this
// receiver is registered via defer on every path joined so far.
type heldLock struct {
	deferred bool
}

type lockState map[lockKey]heldLock

func runLockCheck(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		funcBodies(f, func(name string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkLocks(pass, name, body)
		})
	}
	return nil
}

func checkLocks(pass *Pass, name string, body *ast.BlockStmt) {
	// Fast path: skip the dataflow entirely for lock-free functions.
	if !mentionsLockOp(pass, body) {
		return
	}
	nonBlocking := nonBlockingComms(body)
	g := cfg.New(body)
	flow := cfg.Flow[lockState]{
		Entry: lockState{},
		Transfer: func(n ast.Node, s lockState) lockState {
			return lockTransfer(pass, n, s)
		},
		Join:  joinLocks,
		Equal: equalLocks,
		Clone: cloneLocks,
	}
	in := cfg.Forward(g, flow)

	// Replay each reachable block to place blocking-while-held diagnostics,
	// applying the transfer after the check so the acquiring statement is
	// not flagged against itself.
	reported := map[token.Pos]bool{}
	for _, blk := range g.Blocks {
		s, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		s = cloneLocks(s)
		for _, n := range blk.Nodes {
			// Deferred calls execute at return, not here; their lock effects
			// are handled by the transfer function.
			_, isDefer := n.(*ast.DeferStmt)
			if len(s) > 0 && !isDefer {
				if desc, pos := blockingDesc(pass, n, nonBlocking); desc != "" && !reported[pos] {
					reported[pos] = true
					k := earliestLock(s)
					pass.Reportf(pos, "%s while %s is held (acquired at line %d); release the lock before blocking",
						desc, k.expr+lockVerb(k.kind), pass.Fset.Position(k.pos).Line)
				}
			}
			s = lockTransfer(pass, n, s)
		}
	}

	// Leak check: any acquisition still held at Exit without a deferred
	// unlock on every path escapes the function locked.
	if exit, ok := in[g.Exit]; ok {
		var leaks []lockKey
		for k, h := range exit {
			if !h.deferred {
				leaks = append(leaks, k)
			}
		}
		sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
		for _, k := range leaks {
			pass.Reportf(k.pos, "%s acquired in %s is not released on every return path; unlock before returning or `defer %s`",
				k.expr+lockVerb(k.kind), name, k.expr+unlockName(k.kind))
		}
	}
}

func lockVerb(kind byte) string {
	if kind == 'R' {
		return ".RLock()"
	}
	return ".Lock()"
}

func unlockName(kind byte) string {
	if kind == 'R' {
		return ".RUnlock()"
	}
	return ".Unlock()"
}

// earliestLock returns the earliest-acquired held lock, for stable
// diagnostics when several locks are held.
func earliestLock(s lockState) lockKey {
	var best lockKey
	first := true
	for k := range s {
		if first || k.pos < best.pos {
			best, first = k, false
		}
	}
	return best
}

// lockTransfer applies one block node's lock effects to the state.
func lockTransfer(pass *Pass, n ast.Node, s lockState) lockState {
	switch n := n.(type) {
	case *ast.GoStmt:
		// The spawned call runs on another goroutine's stack; its lock
		// operations are that frame's business (funcBodies analyzes the
		// literal separately).
		return s
	case *ast.DeferStmt:
		markDeferredUnlocks(pass, n, s)
		return s
	}
	scanShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		expr, kind, acquire, ok := lockOp(pass, call)
		if !ok {
			return true
		}
		if acquire {
			s[lockKey{expr, kind, call.Pos()}] = heldLock{}
		} else {
			for k := range s {
				if k.expr == expr && k.kind == kind {
					delete(s, k)
				}
			}
		}
		return true
	})
	return s
}

// markDeferredUnlocks marks currently-held locks whose unlock is registered
// by d — either `defer mu.Unlock()` directly or a deferred closure whose
// body unlocks.
func markDeferredUnlocks(pass *Pass, d *ast.DeferStmt, s lockState) {
	mark := func(expr string, kind byte) {
		for k, h := range s {
			if k.expr == expr && k.kind == kind {
				h.deferred = true
				s[k] = h
			}
		}
	}
	if expr, kind, acquire, ok := lockOp(pass, d.Call); ok && !acquire {
		mark(expr, kind)
		return
	}
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if expr, kind, acquire, ok := lockOp(pass, call); ok && !acquire {
					mark(expr, kind)
				}
			}
			return true
		})
	}
}

// lockOp classifies call as a lock operation on a sync.Mutex or
// sync.RWMutex receiver (including one promoted from an embedded field),
// returning the receiver's source text, the lock kind, and whether the
// operation acquires.
func lockOp(pass *Pass, call *ast.CallExpr) (expr string, kind byte, acquire bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock":
		kind, acquire = 'W', sel.Sel.Name == "Lock"
	case "RLock", "RUnlock":
		kind, acquire = 'R', sel.Sel.Name == "RLock"
	default:
		return "", 0, false, false
	}
	if isSyncMutex(pass.Info.TypeOf(sel.X)) {
		return types.ExprString(sel.X), kind, acquire, true
	}
	// Promoted method from an embedded Mutex: resolve through the selection.
	if selx, found := pass.Info.Selections[sel]; found {
		if fn, isFn := selx.Obj().(*types.Func); isFn {
			sig := fn.Type().(*types.Signature)
			if recv := sig.Recv(); recv != nil && isSyncMutex(recv.Type()) {
				return types.ExprString(sel.X), kind, acquire, true
			}
		}
	}
	return "", 0, false, false
}

// isSyncMutex reports whether t (after pointer indirection) is sync.Mutex
// or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	return namedPathIs(t, "sync", "Mutex") || namedPathIs(t, "sync", "RWMutex")
}

// mentionsLockOp is a cheap syntactic prefilter: does the body contain any
// Lock/RLock selector call at all?
func mentionsLockOp(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock":
					if _, _, _, isLock := lockOp(pass, call); isLock {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// nonBlockingComms collects the communication statements of every `select`
// that has a `default` clause: those sends/receives never block.
func nonBlockingComms(body *ast.BlockStmt) map[ast.Node]bool {
	set := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				set[cc.Comm] = true
			}
		}
		return true
	})
	return set
}

// blockingDesc classifies node n as a blocking operation, returning a short
// description and the position to report, or "" if n cannot block.
func blockingDesc(pass *Pass, n ast.Node, nonBlocking map[ast.Node]bool) (string, token.Pos) {
	if nonBlocking[n] {
		return "", token.NoPos
	}
	var desc string
	var pos token.Pos
	scanShallow(n, func(m ast.Node) bool {
		if desc != "" {
			return false
		}
		switch m := m.(type) {
		case *ast.SendStmt:
			if !nonBlocking[m] {
				desc, pos = "channel send", m.Arrow
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				desc, pos = "channel receive", m.OpPos
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(m.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					desc, pos = "range over channel", m.For
				}
			}
		case *ast.CallExpr:
			if _, _, _, isLock := lockOp(pass, m); isLock {
				return true
			}
			if d := blockingCall(pass, m); d != "" {
				desc, pos = d, m.Pos()
			}
		}
		return desc == ""
	})
	return desc, pos
}

// blockingCall classifies a call expression as blocking: time.Sleep,
// WaitGroup/Cond Wait, a callee whose signature accepts a context.Context
// (the cancellable-operation convention), or I/O routed through an
// interface-typed writer (fmt.Fprint*, io.WriteString, io.Copy, or a
// Write/WriteString/Read method on an interface value).
func blockingCall(pass *Pass, call *ast.CallExpr) string {
	switch calleePkg(pass, call) {
	case "time":
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Sleep" {
			return "time.Sleep"
		}
	case "fmt":
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Fprint", "Fprintf", "Fprintln":
				if len(call.Args) > 0 && isInterfaceValue(pass, call.Args[0]) {
					return "I/O write via fmt." + sel.Sel.Name
				}
			}
		}
	case "io":
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "WriteString", "Copy":
				if len(call.Args) > 0 && isInterfaceValue(pass, call.Args[0]) {
					return "I/O write via io." + sel.Sel.Name
				}
			}
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		recvT := pass.Info.TypeOf(sel.X)
		switch sel.Sel.Name {
		case "Wait":
			if recvT != nil && (namedPathIs(recvT, "sync", "WaitGroup") || namedPathIs(recvT, "sync", "Cond")) {
				return selString(sel)
			}
		case "Write", "WriteString", "Read":
			if isInterfaceValue(pass, sel.X) {
				return "I/O via " + selString(sel)
			}
		}
	}
	if signatureTakesContext(pass, call) {
		return "call to a context-accepting function"
	}
	return ""
}

// isInterfaceValue reports whether e's static type is an interface — the
// signature of I/O whose latency the caller cannot bound (network writers,
// hijacked connections).
func isInterfaceValue(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func joinLocks(a, b lockState) lockState {
	out := cloneLocks(a)
	for k, h := range b {
		if prev, ok := out[k]; ok {
			// Deferred only if deferred on every joined path.
			out[k] = heldLock{deferred: prev.deferred && h.deferred}
		} else {
			out[k] = h
		}
	}
	return out
}

func equalLocks(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, h := range a {
		if bh, ok := b[k]; !ok || bh != h {
			return false
		}
	}
	return true
}

func cloneLocks(s lockState) lockState {
	out := make(lockState, len(s))
	for k, h := range s {
		out[k] = h
	}
	return out
}
