package lint_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"avfda/internal/lint"
)

// writeCacheModule lays out a three-package throwaway module for the
// invalidation tests: a imports b (so editing b must re-analyze both),
// c is independent and carries the suite's canonical errsubstr violation
// so cached findings are observably non-empty.
func writeCacheModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module cachemod\n\ngo 1.22\n")
	write("b/b.go", "package b\n\nfunc Answer() int { return 42 }\n")
	write("a/a.go", "package a\n\nimport \"cachemod/b\"\n\nfunc Double() int { return 2 * b.Answer() }\n")
	write("c/c.go", `package c

import "strings"

func IsTimeout(err error) bool {
	return strings.Contains(err.Error(), "timeout")
}
`)
	return dir
}

// runCached is RunCachedTimed with the boilerplate folded away.
func runCached(t *testing.T, dir, cacheDir string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, lint.CacheStats) {
	t.Helper()
	diags, _, stats, err := lint.RunCachedTimed(dir, cacheDir, 0, analyzers, "./...")
	if err != nil {
		t.Fatal(err)
	}
	return diags, stats
}

// TestCacheColdWarmIdentical pins the cache's core contract: a cold cached
// run, a fully-warm run, and a plain uncached run over the same tree all
// return identical diagnostics, and the warm run touches no package.
func TestCacheColdWarmIdentical(t *testing.T) {
	dir := writeCacheModule(t)
	cache := filepath.Join(dir, ".lintcache")
	analyzers := lint.All()

	pkgs, err := lint.LoadModuleParallel(dir, 0, "./...")
	if err != nil {
		t.Fatal(err)
	}
	uncached, _, err := lint.RunTimed(pkgs, analyzers, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(uncached) == 0 {
		t.Fatal("fixture module produced no findings; the test needs at least one")
	}

	cold, stats := runCached(t, dir, cache, analyzers)
	if stats.Hits != 0 || stats.Misses != 3 {
		t.Errorf("cold run: %d hits, %d misses, want 0/3", stats.Hits, stats.Misses)
	}
	if !reflect.DeepEqual(cold, uncached) {
		t.Errorf("cold cached diagnostics differ from uncached:\ncached:   %v\nuncached: %v", cold, uncached)
	}

	warm, stats := runCached(t, dir, cache, analyzers)
	if stats.Hits != 3 || stats.Misses != 0 {
		t.Errorf("warm run: %d hits, %d misses, want 3/0", stats.Hits, stats.Misses)
	}
	if !reflect.DeepEqual(warm, uncached) {
		t.Errorf("warm cached diagnostics differ from uncached:\ncached:   %v\nuncached: %v", warm, uncached)
	}
}

// TestCacheEditInvalidation pins the dependency-closure rule: editing one
// file re-analyzes exactly that package and its reverse dependencies,
// while unrelated packages keep hitting.
func TestCacheEditInvalidation(t *testing.T) {
	dir := writeCacheModule(t)
	cache := filepath.Join(dir, ".lintcache")
	analyzers := lint.All()

	runCached(t, dir, cache, analyzers) // populate
	if err := os.WriteFile(filepath.Join(dir, "b", "b.go"),
		[]byte("package b\n\nfunc Answer() int { return 43 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, stats := runCached(t, dir, cache, analyzers)
	wantMiss := []string{"cachemod/a", "cachemod/b"}
	if !reflect.DeepEqual(stats.MissPaths, wantMiss) {
		t.Errorf("after editing b: missed %v, want %v", stats.MissPaths, wantMiss)
	}
	if stats.Hits != 1 {
		t.Errorf("after editing b: %d hits, want 1 (cachemod/c untouched)", stats.Hits)
	}

	// The refreshed entries serve the next run in full.
	_, stats = runCached(t, dir, cache, analyzers)
	if stats.Hits != 3 || stats.Misses != 0 {
		t.Errorf("re-warm run: %d hits, %d misses, want 3/0", stats.Hits, stats.Misses)
	}
}

// TestCacheAnalyzerVersionBump pins that bumping an Analyzer.Version
// invalidates every entry: version participates in the key precisely so a
// changed analyzer can never serve stale findings.
func TestCacheAnalyzerVersionBump(t *testing.T) {
	dir := writeCacheModule(t)
	cache := filepath.Join(dir, ".lintcache")
	base := *lint.ErrSubstr
	analyzers := []*lint.Analyzer{&base}

	runCached(t, dir, cache, analyzers)
	if _, stats := runCached(t, dir, cache, analyzers); stats.Hits != 3 {
		t.Fatalf("warm run before bump: %d hits, want 3", stats.Hits)
	}

	bumped := *lint.ErrSubstr
	bumped.Version++
	_, stats := runCached(t, dir, cache, []*lint.Analyzer{&bumped})
	if stats.Misses != 3 || stats.Hits != 0 {
		t.Errorf("after version bump: %d hits, %d misses, want 0/3", stats.Hits, stats.Misses)
	}
}

// TestCacheCorruptEntryIsMiss pins the robustness contract: truncated or
// garbage entries are silently re-analyzed, never an error and never
// wrong output.
func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := writeCacheModule(t)
	cache := filepath.Join(dir, ".lintcache")
	analyzers := lint.All()

	want, _ := runCached(t, dir, cache, analyzers)
	ents, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for _, e := range ents {
		if filepath.Ext(e.Name()) != ".json" {
			continue
		}
		if err := os.WriteFile(filepath.Join(cache, e.Name()), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		corrupted++
	}
	if corrupted != 3 {
		t.Fatalf("corrupted %d entries, want 3", corrupted)
	}

	got, stats := runCached(t, dir, cache, analyzers)
	if stats.Misses != 3 {
		t.Errorf("corrupt entries: %d misses, want 3", stats.Misses)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("diagnostics after corruption differ:\ngot:  %v\nwant: %v", got, want)
	}
}

// lintRepoRoot walks up to the module root so the speedup test can run
// the cache over the real repository.
func lintRepoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

// TestCacheRepoSpeedup pins the acceptance threshold the cache exists
// for: a fully-warm run over the unchanged repository must be at least 5x
// faster than the cold run that populated it. The margin is generous — in
// practice warm runs only hash files and read JSON — so a pass is
// scheduling noise, not luck.
func TestCacheRepoSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("lints the whole repository twice; skipped in -short mode")
	}
	root := lintRepoRoot(t)
	cache := t.TempDir()
	analyzers := lint.All()

	coldStart := time.Now()
	coldDiags, _, coldStats, err := lint.RunCachedTimed(root, cache, 0, analyzers, "./...")
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)
	if coldStats.Hits != 0 {
		t.Fatalf("cold run had %d hits, want 0", coldStats.Hits)
	}

	warmStart := time.Now()
	warmDiags, _, warmStats, err := lint.RunCachedTimed(root, cache, 0, analyzers, "./...")
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(warmStart)
	if warmStats.Misses != 0 {
		t.Fatalf("warm run missed %v, want none", warmStats.MissPaths)
	}
	if !reflect.DeepEqual(warmDiags, coldDiags) {
		t.Errorf("warm diagnostics differ from cold:\nwarm: %v\ncold: %v", warmDiags, coldDiags)
	}
	if warm*5 > cold {
		t.Errorf("warm run %v is not ≥5x faster than cold %v", warm, cold)
	}
	t.Logf("cold %v, warm %v (%.1fx)", cold, warm, float64(cold)/float64(warm))
}
