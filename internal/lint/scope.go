package lint

// scopeExemptions records, per analyzer with a non-empty Scope, the
// internal/ packages deliberately left out of that scope and why. The
// meta-test in scope_test.go enumerates every real package under
// internal/ and fails when one is neither in the analyzer's Scope nor
// listed here — scope lists otherwise drift silently as packages are
// added (internal/serve and internal/loadgen were both missing from
// mapiter for two generations).
//
// An exemption is a recorded decision, not an escape hatch: each entry
// carries the reason the analyzer's invariant does not apply to that
// package. Analyzers with an empty Scope run everywhere and need no
// entries.
var scopeExemptions = map[string]map[string]string{
	"mapiter": mergeExempt(
		lintToolingExempt,
		exemptPkgs("map iteration never reaches an output or hash surface; "+
			"ordering is normalized downstream when results are consolidated",
			"internal/calib", "internal/mission", "internal/nlp",
			"internal/ocr", "internal/ontology", "internal/parse",
			"internal/pipeline", "internal/reliability", "internal/scandoc",
			"internal/schema", "internal/stpa", "internal/synth"),
	),
	"nondeterm": mergeExempt(
		lintToolingExempt,
		exemptPkgs("timing-centric by design: latency histograms, LRU clocks, "+
			"and arrival pacing read the wall clock as a feature, not a hazard",
			"internal/serve", "internal/loadgen"),
		exemptPkgs("the pipeline is the legitimate wall-clock reader: it owns "+
			"StageTimings and stamps stage boundaries from outside the stages",
			"internal/pipeline"),
		exemptPkgs("already seed-disciplined: all randomness flows from the "+
			"per-document RNG (docRNG) and no clocks are read; the nd fixture "+
			"pins ocr as a non-stage package",
			"internal/ocr"),
		exemptPkgs("not a pipeline stage: no seed-derived randomness contract "+
			"and no code on the corpus-to-snapshot byte-identity path",
			"internal/calib", "internal/frame", "internal/mission",
			"internal/ontology", "internal/query", "internal/reliability",
			"internal/report", "internal/scandoc", "internal/schema",
			"internal/stats", "internal/stpa"),
	),
	"goroleak": mergeExempt(
		lintToolingExempt,
		exemptPkgs("sequential package: spawns no goroutines, so there is "+
			"nothing to tether",
			"internal/calib", "internal/core", "internal/frame",
			"internal/mission", "internal/ontology", "internal/query",
			"internal/reliability", "internal/report", "internal/scandoc",
			"internal/schema", "internal/snapshot", "internal/stats",
			"internal/stpa", "internal/synth"),
	),
	"ctxflow": mergeExempt(
		lintToolingExempt,
		exemptPkgs("no context.Context plumbing: the package API is "+
			"synchronous and context-free, so there is no in-scope context "+
			"to drop",
			"internal/calib", "internal/core", "internal/frame",
			"internal/mission", "internal/nlp", "internal/ocr",
			"internal/ontology", "internal/parse", "internal/query",
			"internal/reliability", "internal/report", "internal/scandoc",
			"internal/schema", "internal/snapshot", "internal/snapshot2",
			"internal/stats", "internal/stpa", "internal/synth"),
	),
}

// lintToolingExempt covers the analysis framework itself: it runs at
// development time, not in the shipped pipeline, and deliberately uses
// patterns (map iteration over diagnostics, wall-clock timings) the
// analyzers forbid in production packages.
var lintToolingExempt = exemptPkgs(
	"lint tooling: development-time code outside the pipeline's "+
		"determinism and lifecycle contracts",
	"internal/lint", "internal/lint/analysistest", "internal/lint/cfg")

// exemptPkgs builds one exemption block: every package in pkgs carries
// the same recorded reason.
func exemptPkgs(reason string, pkgs ...string) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		m[p] = reason
	}
	return m
}

// mergeExempt unions exemption blocks for one analyzer. Duplicate keys
// across blocks would mean two conflicting recorded reasons; the
// meta-test treats that as drift, so blocks must stay disjoint.
func mergeExempt(blocks ...map[string]string) map[string]string {
	out := map[string]string{}
	for _, b := range blocks {
		for k, v := range b {
			out[k] = v
		}
	}
	return out
}
