package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestGoroLeak drives goroleak over a scoped fixture package (untethered
// literal and named-call spawns flagged; WaitGroup, channel, context, and
// tether-carrying-argument spawns accepted) and an out-of-scope package
// where the same orphan spawn is not flagged.
func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.GoroLeak,
		"goro/internal/pipeline", "goro/internal/other")
}
