package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestAtomicMix drives atomicmix over mixed-access fixtures: plain reads,
// read-modify-writes, and typed-atomic copies of atomically-updated state
// are flagged — including a field whose only atomic updater lives in the
// amix/b dependency — while mutex-guarded reads, method-based typed-atomic
// use, plain initialization writes, and atomics on joined locals are
// accepted.
func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.AtomicMix, "amix/a")
}
