package lint

// atomicmix flags mixed atomic/plain access to shared state: a struct field
// or package-level variable that some code updates through sync/atomic (or
// that has a typed-atomic type like atomic.Int64) being read — or
// read-modify-written (x++, x += n) — as a plain value elsewhere, with no
// lock held at the plain access. That mix is exactly how torn reads hide:
// the atomic side establishes that the value is concurrently written, so
// every other access must either be atomic too or sit inside a critical
// section.
//
// The atomic-use evidence is gathered module-wide: every non-test function
// of the current package and its in-module import closure contributes
// markers, so a field updated atomically in one package and read plainly in
// another is still caught (the interprocedural case the fixtures pin).
// Plain *writes* through `=` are deliberately not flagged — constructor and
// reset code initializes not-yet-shared values that way — and locals are
// never markers (the `atomic.Add` in a goroutine / plain read after
// `wg.Wait()` idiom is a legal join). Both are documented false negatives,
// as is access through an alias created by `&x.f`.

import (
	"go/ast"
	"go/token"
	"go/types"

	"avfda/internal/lint/cfg"
)

// AtomicMix flags fields/variables accessed atomically in one place and as
// plain unsynchronized values elsewhere.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flags struct fields and package variables updated via sync/atomic (or typed " +
		"atomics like atomic.Int64) that are also read or read-modify-written as plain " +
		"values without the guarding mutex held",
	Version: 1,
	Run:     runAtomicMix,
}

// atomicWitness records where a variable was seen used atomically, for the
// diagnostic's cross-reference.
type atomicWitness struct {
	name string // display name ("(serve.proxyMetrics).copyErrs", "b.Shared")
	call string // "atomic.AddInt64"
	pos  token.Pos
}

func runAtomicMix(pass *Pass) error {
	// Atomic-use markers, module-wide: the current package's non-test
	// functions first (deterministic witness order), then the in-module
	// import closure.
	marks := map[*types.Var]atomicWitness{}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		collectAtomicMarks(pass.Info, f, marks)
	}
	if pass.Funcs != nil {
		for _, path := range inModuleClosure(pass) {
			for _, fn := range pass.Funcs.FuncsIn(path) {
				src, ok := pass.Funcs.Source(fn)
				if !ok {
					continue
				}
				if pathIsTestFile(pass.Fset, src.Decl.Pos()) {
					continue
				}
				collectAtomicMarks(src.Info, src.Decl, marks)
			}
		}
	}

	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		funcBodies(f, func(_ string, _ *ast.FuncType, body *ast.BlockStmt) {
			checkAtomicMix(pass, body, marks)
		})
	}
	return nil
}

// pathIsTestFile reports whether pos lies in a _test.go file.
func pathIsTestFile(fset *token.FileSet, pos token.Pos) bool {
	name := fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}

// collectAtomicMarks records every field/package-level variable whose
// address is passed to a sync/atomic function inside root (function
// literals and go statements included — atomic use anywhere is evidence).
func collectAtomicMarks(info *types.Info, root ast.Node, marks map[*types.Var]atomicWitness) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := calleeFunc(info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
			return true
		}
		if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
			// Typed-atomic methods need no marker: the field's type is the
			// evidence, checked at each use site.
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		u, ok := unparen(call.Args[0]).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			return true
		}
		v, name := fieldOrPkgVar(info, u.X)
		if v == nil {
			return true
		}
		if _, seen := marks[v]; !seen {
			marks[v] = atomicWitness{name: name, call: "atomic." + callee.Name(), pos: call.Pos()}
		}
		return true
	})
}

// fieldOrPkgVar resolves e (index/deref layers stripped) to a struct field
// or package-level variable with a display name. Locals return nil: a local
// updated atomically and read after a join is legal, and the analysis
// cannot see the join.
func fieldOrPkgVar(info *types.Info, e ast.Expr) (*types.Var, string) {
	switch x := atomicBase(e).(type) {
	case *ast.Ident:
		if v, ok := info.ObjectOf(x).(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v, v.Pkg().Name() + "." + v.Name()
			}
		}
	case *ast.SelectorExpr:
		if selx, ok := info.Selections[x]; ok && selx.Kind() == types.FieldVal {
			if v, ok := selx.Obj().(*types.Var); ok {
				return v, "(" + typeDisplay(info.TypeOf(x.X)) + ")." + v.Name()
			}
		}
		// Package-qualified variable (pkg.Var).
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, v.Pkg().Name() + "." + v.Name()
		}
	}
	return nil, ""
}

// atomicBase strips parens, index, and deref layers: the access class of
// locks[i] or *p.f is the base field/variable.
func atomicBase(e ast.Expr) ast.Expr {
	e = unparen(e)
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = unparen(x.X)
		case *ast.StarExpr:
			e = unparen(x.X)
		default:
			return e
		}
	}
}

// checkAtomicMix flags unsanctioned plain uses of marked or atomic-typed
// variables in one function body, suppressing uses made while any lock is
// held (the "guarding mutex" escape the invariant names).
func checkAtomicMix(pass *Pass, body *ast.BlockStmt, marks map[*types.Var]atomicWitness) {
	sanctioned := collectSanctioned(pass.Info, body)
	if !mentionsLockOp(pass, body) {
		// Lock-free body: every use is unguarded; one deep walk suffices
		// (function literals are pruned — they get their own visit).
		ast.Inspect(body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			flagAtomicUse(pass, m, marks, sanctioned)
			return true
		})
		return
	}
	// Reuse lockcheck's held-set dataflow to know where a mutex guards the
	// access; block replay mirrors checkLocks.
	g := cfg.New(body)
	in := cfg.Forward(g, cfg.Flow[lockState]{
		Entry: lockState{},
		Transfer: func(n ast.Node, s lockState) lockState {
			return lockTransfer(pass, n, s)
		},
		Join:  joinLocks,
		Equal: equalLocks,
		Clone: cloneLocks,
	})
	for _, blk := range g.Blocks {
		s, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		s = cloneLocks(s)
		for _, n := range blk.Nodes {
			if len(s) == 0 {
				scanShallow(n, func(m ast.Node) bool {
					flagAtomicUse(pass, m, marks, sanctioned)
					return true
				})
			}
			s = lockTransfer(pass, n, s)
		}
	}
}

// collectSanctioned gathers the use nodes that are not plain reads: the
// operand of an address-of (&x.f — the shape atomic calls and legitimate
// aliasing use), the receiver base of any method selection (v.flag.Load()),
// and the targets of plain `=`/`:=` assignment (initialization writes, a
// documented false negative).
func collectSanctioned(info *types.Info, body ast.Node) map[ast.Node]bool {
	s := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				s[atomicBase(n.X)] = true
			}
		case *ast.SelectorExpr:
			// The Sel identifier is never a standalone use — the selector
			// node carries the access — so marking it prevents one access
			// from reporting twice (pkg.Var resolves at both nodes).
			s[n.Sel] = true
			if selx, ok := info.Selections[n]; ok && selx.Kind() == types.MethodVal {
				s[atomicBase(n.X)] = true
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					s[atomicBase(lhs)] = true
				}
			}
		}
		return true
	})
	return s
}

// flagAtomicUse reports node m when it is an unsanctioned plain use of a
// marked or typed-atomic field/variable.
func flagAtomicUse(pass *Pass, m ast.Node, marks map[*types.Var]atomicWitness, sanctioned map[ast.Node]bool) {
	var v *types.Var
	var name string
	switch x := m.(type) {
	case *ast.SelectorExpr:
		if sanctioned[x] {
			return
		}
		v, name = fieldOrPkgVar(pass.Info, x)
	case *ast.Ident:
		if sanctioned[x] {
			return
		}
		// Bare identifier: only package-level variables qualify (fields are
		// always reached through a selector; the Sel of a selector resolves
		// there, not here, because fieldOrPkgVar requires package scope).
		if obj, ok := pass.Info.Uses[x].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			v, name = obj, obj.Pkg().Name()+"."+obj.Name()
		}
	default:
		return
	}
	if v == nil {
		return
	}
	if w, ok := marks[v]; ok {
		pass.Reportf(m.Pos(), "%s is updated atomically (%s at %s) but accessed as a plain value here; use the matching atomic load, or hold one mutex at every access",
			w.name, w.call, posShort(pass.Fset, w.pos))
		return
	}
	if isAtomicNamed(v.Type()) {
		pass.Reportf(m.Pos(), "%s has atomic type %s; copying the value races with its atomic users — access it only through its methods",
			name, typeDisplay(v.Type()))
	}
}

// isAtomicNamed reports whether t (after pointer indirection) is one of the
// typed atomics declared in sync/atomic (Bool, Int64, Pointer[T], Value, …).
func isAtomicNamed(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}
