package lint_test

import (
	"testing"

	"avfda/internal/lint"
	"avfda/internal/lint/analysistest"
)

// TestExhaustiveCategory drives the exhaustive-category analyzer over a
// fixture importing a stubbed avfda/internal/ontology: switches missing
// enum members without a default are flagged; a default clause, full
// coverage, or a non-guarded switch type are accepted.
func TestExhaustiveCategory(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lint.ExhaustiveCategory, "exh/a")
}
