package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// enumTypes are the closed enums a switch must cover exhaustively: the
// fault-tag and failure-category ontology (Table III). The paper's headline
// numbers are per-category roll-ups, so a category added to the ontology
// must not silently fall through a classifier or report path.
var enumTypes = map[[2]string]bool{
	{"avfda/internal/ontology", "Tag"}:      true,
	{"avfda/internal/ontology", "Category"}: true,
}

// ExhaustiveCategory flags a switch over ontology.Category or ontology.Tag
// that neither covers every member of the enum nor declares a default
// clause. Either is acceptable: full coverage makes the compiler-adjacent
// intent explicit, a default names the fallback. Neither means a new
// ontology member silently takes the zero path.
var ExhaustiveCategory = &Analyzer{
	Name: "exhaustive-category",
	Doc: "flags switches over ontology.Tag/ontology.Category that lack both full case " +
		"coverage and a default clause, so ontology growth cannot silently fall through",
	Run: runExhaustiveCategory,
}

func runExhaustiveCategory(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := namedEnum(pass, sw.Tag)
			if named == nil {
				return true
			}
			missing, verifiable := missingMembers(pass, sw, named)
			if verifiable && len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch over %s.%s is not exhaustive and has no default (missing %s): add the missing cases or a default so ontology growth cannot fall through",
					named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// namedEnum returns the named type of e if it is one of the guarded enums.
func namedEnum(pass *Pass, e ast.Expr) *types.Named {
	t := pass.Info.TypeOf(e)
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !enumTypes[[2]string{obj.Pkg().Path(), obj.Name()}] {
		return nil
	}
	return named
}

// missingMembers compares the switch's constant case values against every
// package-level constant of the enum's type. It reports verifiable=false
// when the switch has a default clause (nothing to enforce) or a
// non-constant case expression (coverage cannot be proven statically).
func missingMembers(pass *Pass, sw *ast.SwitchStmt, named *types.Named) (missing []string, verifiable bool) {
	covered := map[string]bool{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return nil, false // default clause
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				return nil, false // non-constant case
			}
			covered[tv.Value.ExactString()] = true
		}
	}

	scope := named.Obj().Pkg().Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		if !covered[c.Val().ExactString()] {
			missing = append(missing, name)
		}
	}
	return missing, true
}
