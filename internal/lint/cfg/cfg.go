// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies and provides a small forward dataflow driver, the
// foundation of the flow-sensitive generation of avlint analyzers
// (lockcheck, httpresp). Like the rest of internal/lint it is built on the
// standard library only, so `go run ./cmd/avlint ./...` keeps working in
// offline, dependency-free environments.
//
// # Scope and limits
//
// The graph is intra-procedural and syntactic: one Graph per function body,
// no call-graph, no alias analysis, no SSA. Basic blocks hold the executable
// nodes of the function in execution order — simple statements (assignments,
// calls, sends, defers, returns) plus the condition/tag expressions of the
// control statements that split blocks. Control statements themselves never
// appear as block nodes, with one deliberate exception: a RangeStmt heads
// its own loop block (analyzers that care about range-over-channel blocking
// need the statement, not just the ranged expression) and its Body is
// excluded from shallow scans by convention (see NodeCalls).
//
// Edges cover if/else, for (cond/post/infinite), range, switch and type
// switch (including fallthrough and missing default), select (one edge per
// communication clause), labeled break/continue, goto, return, and panic.
// Return edges to the synthetic Exit block; panic and calls that provably
// never return (os.Exit, runtime.Goexit, log.Fatal*) terminate their block
// without reaching Exit, so "on every path to return" analyses do not flag
// abort paths. Deferred calls stay in their blocks as DeferStmt nodes;
// run-at-exit semantics are interpreted by the analyzers (lockcheck treats
// `defer mu.Unlock()` as a release that is pending, not performed).
//
// Code after a terminating statement starts a fresh block with no
// predecessors; the dataflow driver never visits unreachable blocks.
//
// # Branch conditions
//
// Blocks that end in a boolean condition (if statements and for loops with
// a condition) record it in Block.Branch, together with which successor is
// taken when the condition is true and which when it is false. The dataflow
// driver exposes this through Flow.Branch, letting an analysis refine the
// state per edge — the load-bearing case is the `if err != nil { return }`
// idiom, where a resource paired with err is nil (and needs no release) on
// the error edge. Switch and select dispatch is not modeled as branch
// conditions; analyses see the unrefined join there.
package cfg

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first. It may be empty.
	Entry *Block
	// Exit is the synthetic block every return (and the fall-off-the-end
	// path) edges to. It holds no nodes.
	Exit *Block
	// Blocks lists every block, Entry first, Exit last, in creation order
	// (roughly source order).
	Blocks []*Block
}

// A Block is one basic block: a maximal run of nodes with a single entry
// and a single exit point.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Nodes are the executable nodes in execution order: simple statements
	// and the condition/tag expressions of the control statements that end
	// the block. See the package comment for the RangeStmt exception.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs []*Block
	// Preds mirrors Succs.
	Preds []*Block
	// Branch, when non-nil, records that the block ends by evaluating a
	// boolean condition and names the successor taken on each outcome.
	Branch *Branch
}

// A Branch is a conditional block exit: Cond is the if/for condition whose
// value selects between the True and False successors. Both appear in the
// block's Succs; the dataflow driver uses the pair to refine edge states.
type Branch struct {
	// Cond is the condition expression (the block's last node).
	Cond ast.Expr
	// True is the successor taken when Cond evaluates true.
	True *Block
	// False is the successor taken when Cond evaluates false.
	False *Block
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, labels: map[string]*labelTarget{}}
	g.Entry = b.newBlock()
	g.Exit = &Block{}
	b.cur = g.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, g.Exit)
	}
	b.resolveGotos()
	g.Exit.Index = len(g.Blocks)
	g.Blocks = append(g.Blocks, g.Exit)
	return g
}

// builder tracks the construction state: the block under construction and
// the active break/continue/goto targets.
type builder struct {
	g   *Graph
	cur *Block // nil after a terminating statement

	// breakTargets and continueTargets stack the enclosing loop/switch
	// targets, innermost last, each with the label of its enclosing
	// LabeledStmt ("" when unlabeled).
	breakTargets    []branchTarget
	continueTargets []branchTarget
	// pendingLabel is the label of a LabeledStmt whose inner statement is
	// about to be built; loops and switches consume it for their targets.
	pendingLabel string
	// labels maps label names to their blocks for goto resolution.
	labels map[string]*labelTarget
	// gotos are forward gotos waiting for their label's block.
	gotos []pendingGoto
	// fallthroughTo is the next case clause's block while a switch clause
	// body is being built.
	fallthroughTo *Block
}

type branchTarget struct {
	label string
	block *Block
}

type labelTarget struct {
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
	pos   token.Pos
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends an executable node to the current block, starting a fresh
// unreachable block if the previous statement terminated control flow.
func (b *builder) add(n ast.Node) {
	b.reach()
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// reach ensures a current block exists (unreachable code gets a fresh,
// predecessor-less block).
func (b *builder) reach() {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	// Any statement other than the one a pending label belongs to clears it.
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.cur = nil
		}
	case *ast.EmptyStmt:
		// no node
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, DeferStmt.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	thenBlk := b.newBlock()
	b.edge(cond, thenBlk)
	b.cur = thenBlk
	b.stmts(s.Body.List)
	thenEnd := b.cur

	var elseEnd *Block
	if s.Else != nil {
		elseBlk := b.newBlock()
		b.edge(cond, elseBlk)
		cond.Branch = &Branch{Cond: s.Cond, True: thenBlk, False: elseBlk}
		b.cur = elseBlk
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	join := b.newBlock()
	if thenEnd != nil {
		b.edge(thenEnd, join)
	}
	if s.Else == nil {
		b.edge(cond, join)
		cond.Branch = &Branch{Cond: s.Cond, True: thenBlk, False: join}
	} else if elseEnd != nil {
		b.edge(elseEnd, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.reach()
	head := b.newBlock()
	b.edge(b.cur, head)
	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
	}
	after := b.newBlock()
	if s.Cond != nil {
		b.edge(head, after)
	}

	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		cont = post
	}
	b.pushTargets(label, after, cont)
	body := b.newBlock()
	b.edge(head, body)
	if s.Cond != nil {
		head.Branch = &Branch{Cond: s.Cond, True: body, False: after}
	}
	b.cur = body
	b.stmts(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	b.popTargets()
	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.reach()
	head := b.newBlock()
	b.edge(b.cur, head)
	// The whole RangeStmt heads the loop block (see the package comment);
	// shallow scanners must not descend into s.Body.
	head.Nodes = append(head.Nodes, s)
	after := b.newBlock()
	b.edge(head, after) // the range may be empty

	b.pushTargets(label, after, head)
	body := b.newBlock()
	b.edge(head, body)
	b.cur = body
	b.stmts(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.popTargets()
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.reach()
	if s.Tag != nil {
		b.add(s.Tag)
	}
	cond := b.cur
	after := b.newBlock()
	b.pushTargets(label, after, nil)
	b.caseClauses(s.Body.List, cond, after, func(c *ast.CaseClause, blk *Block) {
		for _, e := range c.List {
			blk.Nodes = append(blk.Nodes, e)
		}
	})
	b.popTargets()
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.reach()
	b.add(s.Assign)
	cond := b.cur
	after := b.newBlock()
	b.pushTargets(label, after, nil)
	b.caseClauses(s.Body.List, cond, after, nil)
	b.popTargets()
	b.cur = after
}

// caseClauses wires the shared switch shape: one block per clause, all fed
// from cond, fallthrough edging to the next clause's block, and an edge
// from cond to after when no default exists.
func (b *builder) caseClauses(clauses []ast.Stmt, cond, after *Block, head func(*ast.CaseClause, *Block)) {
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		blocks[i] = b.newBlock()
		b.edge(cond, blocks[i])
		if cc, ok := cl.(*ast.CaseClause); ok {
			if cc.List == nil {
				hasDefault = true
			}
			if head != nil {
				head(cc, blocks[i])
			}
		}
	}
	if !hasDefault {
		b.edge(cond, after)
	}
	for i, cl := range clauses {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = blocks[i]
		saved := b.fallthroughTo
		b.fallthroughTo = nil
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		}
		b.stmts(cc.Body)
		b.fallthroughTo = saved
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	b.reach()
	cond := b.cur
	after := b.newBlock()
	b.pushTargets(label, after, nil)
	any := false
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock()
		b.edge(cond, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.popTargets()
	if !any {
		// `select {}` blocks forever; nothing follows.
		b.cur = nil
		return
	}
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.reach()
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breakTargets, label); t != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.CONTINUE:
		if t := findTarget(b.continueTargets, label); t != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.GOTO:
		if lt, ok := b.labels[label]; ok {
			b.edge(b.cur, lt.block)
		} else {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label, pos: s.Pos()})
		}
		b.cur = nil
	case token.FALLTHROUGH:
		if b.fallthroughTo != nil {
			b.edge(b.cur, b.fallthroughTo)
		}
		b.cur = nil
	}
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	b.reach()
	lbl := b.newBlock()
	b.edge(b.cur, lbl)
	b.cur = lbl
	b.labels[s.Label.Name] = &labelTarget{block: lbl}
	b.pendingLabel = s.Label.Name
	b.stmt(s.Stmt)
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if lt, ok := b.labels[g.label]; ok {
			b.edge(g.from, lt.block)
		}
	}
}

func (b *builder) pushTargets(label string, brk, cont *Block) {
	b.breakTargets = append(b.breakTargets, branchTarget{label: label, block: brk})
	if cont != nil {
		b.continueTargets = append(b.continueTargets, branchTarget{label: label, block: cont})
	} else {
		// Switches and selects are break targets but not continue targets;
		// push a tombstone so pops stay paired.
		b.continueTargets = append(b.continueTargets, branchTarget{label: label, block: nil})
	}
}

func (b *builder) popTargets() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

// findTarget resolves a break/continue target: the innermost entry when
// unlabeled, the matching entry otherwise. Nil-block entries (switch/select
// continue tombstones) are skipped.
func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		t := stack[i]
		if t.block == nil {
			continue
		}
		if label == "" || t.label == label {
			return t.block
		}
	}
	return nil
}

// isTerminalCall reports whether e is a call that never returns: the panic
// builtin, os.Exit, runtime.Goexit, or log.Fatal/Fatalf/Fatalln. These are
// matched syntactically (by selector shape) rather than through go/types so
// the builder stays usable before type checking.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fn.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
