package cfg

import "go/ast"

// Flow parameterizes a forward dataflow analysis over a Graph. S is the
// per-program-point state (typically a small map or set); all callbacks
// must treat their inputs as immutable and return fresh values when the
// result differs.
type Flow[S any] struct {
	// Entry is the state on entry to Graph.Entry.
	Entry S
	// Transfer applies one block node's effect to the state.
	Transfer func(n ast.Node, s S) S
	// Join merges the states of two converging paths (a may-union or
	// must-intersection, the analysis's choice).
	Join func(a, b S) S
	// Equal reports whether two states carry the same facts; it bounds the
	// fixpoint iteration, so it must be a true equivalence.
	Equal func(a, b S) bool
	// Clone deep-copies a state so Transfer is free to mutate its working
	// copy.
	Clone func(S) S
	// Branch, when non-nil, refines the state flowing along a conditional
	// edge: it receives the block's condition, whether this edge is the
	// true or the false outcome, and a private clone of the out-state it
	// may mutate and return. Edges out of blocks without a Branch record
	// (switch dispatch, unconditional flow) are not refined.
	Branch func(cond ast.Expr, taken bool, s S) S
}

// Forward computes the entry state of every reachable block by worklist
// iteration to a fixpoint. Blocks unreachable from Entry are absent from
// the result map — analyzers must skip them rather than assume a zero
// state. Termination requires Transfer/Join (and Branch refinement) to be
// monotone over a finite state space (true for the set-shaped states the
// lint analyzers use).
func Forward[S any](g *Graph, f Flow[S]) map[*Block]S {
	in := map[*Block]S{g.Entry: f.Entry}
	work := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk] = false

		out := f.Clone(in[blk])
		for _, n := range blk.Nodes {
			out = f.Transfer(n, out)
		}
		for _, succ := range blk.Succs {
			eff := out
			if f.Branch != nil && blk.Branch != nil && blk.Branch.True != blk.Branch.False {
				switch succ {
				case blk.Branch.True:
					eff = f.Branch(blk.Branch.Cond, true, f.Clone(out))
				case blk.Branch.False:
					eff = f.Branch(blk.Branch.Cond, false, f.Clone(out))
				}
			}
			prev, ok := in[succ]
			var next S
			if ok {
				next = f.Join(prev, eff)
			} else {
				next = f.Clone(eff)
			}
			if ok && f.Equal(prev, next) {
				continue
			}
			in[succ] = next
			if !queued[succ] {
				queued[succ] = true
				work = append(work, succ)
			}
		}
	}
	return in
}
