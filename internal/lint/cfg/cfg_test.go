package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// build parses one function body and returns its graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// reachable returns the set of blocks reachable from Entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// callsOnPaths runs the dataflow driver with a may-analysis that unions the
// set of call names seen on any path to each block — both a driver test and
// the easiest way to assert path structure.
func callsOnPaths(g *Graph) map[*Block]map[string]bool {
	return Forward(g, Flow[map[string]bool]{
		Entry: map[string]bool{},
		Transfer: func(n ast.Node, s map[string]bool) map[string]bool {
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						s[id.Name] = true
					}
				}
				_, lit := m.(*ast.FuncLit)
				return !lit
			})
			return s
		},
		Join: func(a, b map[string]bool) map[string]bool {
			out := map[string]bool{}
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Clone: func(s map[string]bool) map[string]bool {
			out := make(map[string]bool, len(s))
			for k := range s {
				out[k] = true
			}
			return out
		},
	})
}

func atExit(g *Graph, in map[*Block]map[string]bool) []string {
	s, ok := in[g.Exit]
	if !ok {
		return nil
	}
	var names []string
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

func TestIfElseDiamond(t *testing.T) {
	g := build(t, `
		a()
		if cond() {
			b()
		} else {
			c()
		}
		d()
	`)
	got := atExit(g, callsOnPaths(g))
	want := []string{"a", "b", "c", "cond", "d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("calls reaching exit = %v, want %v", got, want)
	}
	// Exit has exactly one predecessor: the join block after the if.
	if len(g.Exit.Preds) != 1 {
		t.Errorf("exit has %d preds, want 1 (the join block)", len(g.Exit.Preds))
	}
}

func TestIfWithoutElseHasFallthroughEdge(t *testing.T) {
	g := build(t, `
		if cond() {
			b()
		}
		d()
	`)
	// The condition block must branch both into the body and around it.
	var cond *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if call, ok := n.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "cond" {
					cond = blk
				}
			}
		}
	}
	if cond == nil {
		t.Fatal("no block holds the cond() expression")
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("condition block has %d successors, want 2", len(cond.Succs))
	}
}

func TestReturnSkipsRest(t *testing.T) {
	g := build(t, `
		if cond() {
			return
		}
		d()
	`)
	in := callsOnPaths(g)
	got := atExit(g, in)
	// Both the early return (without d) and the fallthrough (with d) reach
	// exit; the union holds all three calls.
	want := []string{"cond", "d"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("calls reaching exit = %v, want %v", got, want)
	}
	if len(g.Exit.Preds) != 2 {
		t.Errorf("exit has %d preds, want 2 (return + fall-off-end)", len(g.Exit.Preds))
	}
}

func TestForLoopBackEdgeAndBreak(t *testing.T) {
	g := build(t, `
		for i := 0; i < n; i++ {
			if stop() {
				break
			}
			work()
		}
		after()
	`)
	got := atExit(g, callsOnPaths(g))
	want := []string{"after", "stop", "work"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("calls reaching exit = %v, want %v", got, want)
	}
	// A loop needs a back edge: some block's successor list must contain a
	// block with a smaller index.
	hasBack := false
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if s.Index < blk.Index {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Error("for loop produced no back edge")
	}
}

func TestInfiniteLoopWithoutBreakNeverReachesExit(t *testing.T) {
	g := build(t, `
		for {
			work()
		}
	`)
	if _, ok := callsOnPaths(g)[g.Exit]; ok {
		t.Error("exit is reachable through an infinite loop with no break")
	}
}

func TestInfiniteLoopWithBreakReachesExit(t *testing.T) {
	g := build(t, `
		for {
			if stop() {
				break
			}
		}
		after()
	`)
	got := atExit(g, callsOnPaths(g))
	want := []string{"after", "stop"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("calls reaching exit = %v, want %v", got, want)
	}
}

func TestRangeLoopMayBeEmpty(t *testing.T) {
	g := build(t, `
		for _, v := range xs {
			use(v)
		}
		after()
	`)
	in := callsOnPaths(g)
	// The loop head must edge directly to the after-block (empty range), so
	// there is a path to exit that calls after but never use. Check the
	// after-block's own entry state can lack "use": its in-state is a union,
	// so instead assert structurally that the head has >= 2 successors.
	var head *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatal("no block holds the RangeStmt")
	}
	if len(head.Succs) != 2 {
		t.Errorf("range head has %d successors, want 2 (body + after)", len(head.Succs))
	}
	if got := atExit(g, in); fmt.Sprint(got) != fmt.Sprint([]string{"after", "use"}) {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestSwitchFanOutNoDefault(t *testing.T) {
	g := build(t, `
		switch tag() {
		case 1:
			a()
		case 2:
			b()
		}
		after()
	`)
	got := atExit(g, callsOnPaths(g))
	want := []string{"a", "after", "b", "tag"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("calls reaching exit = %v, want %v", got, want)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := build(t, `
		switch tag() {
		case 1:
			a()
			fallthrough
		case 2:
			b()
		default:
			c()
		}
	`)
	in := callsOnPaths(g)
	// Some path reaches exit having called both a and b (the fallthrough
	// chain); find the block holding b() and check a is in a predecessor
	// path: the union at exit necessarily holds all of them, so instead
	// assert the edge: the block with a() must have the block with b() as a
	// successor.
	var aBlk, bBlk *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			switch callName(n) {
			case "a":
				aBlk = blk
			case "b":
				bBlk = blk
			}
		}
	}
	if aBlk == nil || bBlk == nil {
		t.Fatal("missing a()/b() blocks")
	}
	found := false
	for _, s := range aBlk.Succs {
		if s == bBlk {
			found = true
		}
	}
	if !found {
		t.Error("fallthrough produced no edge from case 1's block to case 2's block")
	}
	if _, ok := in[g.Exit]; !ok {
		t.Error("exit unreachable")
	}
}

func TestSelectClausesBranch(t *testing.T) {
	g := build(t, `
		select {
		case v := <-ch:
			use(v)
		case out <- 1:
			b()
		}
		after()
	`)
	got := atExit(g, callsOnPaths(g))
	want := []string{"after", "b", "use"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("calls reaching exit = %v, want %v", got, want)
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	g := build(t, `
		select {}
	`)
	if _, ok := callsOnPaths(g)[g.Exit]; ok {
		t.Error("exit reachable past select{}")
	}
}

func TestDeferStaysInBlock(t *testing.T) {
	g := build(t, `
		defer cleanup()
		work()
	`)
	deferCount := 0
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				deferCount++
			}
		}
	}
	if deferCount != 1 {
		t.Errorf("graph holds %d DeferStmt nodes, want 1", deferCount)
	}
	got := atExit(g, callsOnPaths(g))
	want := []string{"cleanup", "work"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("calls reaching exit = %v, want %v", got, want)
	}
}

func TestPanicTerminatesWithoutExitEdge(t *testing.T) {
	g := build(t, `
		if bad() {
			panic("boom")
		}
		ok()
	`)
	in := callsOnPaths(g)
	got := atExit(g, in)
	// The panic path never reaches exit, so every exit path called ok.
	for _, name := range got {
		if name == "panic" {
			t.Error("panic path reaches exit")
		}
	}
	if fmt.Sprint(got) != fmt.Sprint([]string{"bad", "ok"}) {
		t.Errorf("calls reaching exit = %v", got)
	}
}

func TestGotoBackward(t *testing.T) {
	g := build(t, `
	again:
		work()
		if retry() {
			goto again
		}
		done()
	`)
	got := atExit(g, callsOnPaths(g))
	want := []string{"done", "retry", "work"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("calls reaching exit = %v, want %v", got, want)
	}
}

func TestLabeledBreakLeavesOuterLoop(t *testing.T) {
	g := build(t, `
	outer:
		for {
			for {
				if stop() {
					break outer
				}
				inner()
			}
		}
		after()
	`)
	got := atExit(g, callsOnPaths(g))
	want := []string{"after", "inner", "stop"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("calls reaching exit = %v, want %v", got, want)
	}
}

func TestUnreachableCodeGetsPredecessorlessBlock(t *testing.T) {
	g := build(t, `
		return
		dead()
	`)
	in := callsOnPaths(g)
	for blk, s := range in {
		_ = blk
		if s["dead"] {
			t.Error("dead() appears on a reachable path")
		}
	}
	// The dead block still exists in the graph for completeness.
	found := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if callName(n) == "dead" {
				found = true
				if len(blk.Preds) != 0 {
					t.Errorf("dead block has %d preds, want 0", len(blk.Preds))
				}
			}
		}
	}
	if !found {
		t.Error("dead() statement missing from the graph")
	}
}

func TestEveryEdgeIsMirrored(t *testing.T) {
	g := build(t, `
		for i := 0; i < n; i++ {
			switch mode() {
			case 1:
				if x() {
					continue
				}
			default:
				y()
			}
		}
	`)
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			if !contains(s.Preds, blk) {
				t.Errorf("edge %d->%d missing mirror pred", blk.Index, s.Index)
			}
		}
		for _, p := range blk.Preds {
			if !contains(p.Succs, blk) {
				t.Errorf("pred %d->%d missing mirror succ", p.Index, blk.Index)
			}
		}
	}
	// Reachability agrees between Succs walk and the dataflow result.
	in := callsOnPaths(g)
	for blk := range reachable(g) {
		if _, ok := in[blk]; !ok {
			t.Errorf("block %d reachable by Succs walk but unvisited by Forward", blk.Index)
		}
	}
}

// callName unwraps an ExprStmt-or-Expr node holding a plain f() call.
func callName(n ast.Node) string {
	if es, ok := n.(*ast.ExprStmt); ok {
		n = es.X
	}
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return ""
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	return id.Name
}

func contains(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

// TestGraphShapeStrings pins a few whole-graph shapes compactly.
func TestGraphShapeStrings(t *testing.T) {
	g := build(t, `
		a()
		if c {
			b()
		}
	`)
	var lines []string
	for _, blk := range g.Blocks {
		var succs []string
		for _, s := range blk.Succs {
			succs = append(succs, fmt.Sprint(s.Index))
		}
		lines = append(lines, fmt.Sprintf("%d->[%s]", blk.Index, strings.Join(succs, " ")))
	}
	// Entry(0): a(), c -> then(1), join(2); then -> join; join -> exit(3).
	want := "0->[1 2] 1->[2] 2->[3] 3->[]"
	if got := strings.Join(lines, " "); got != want {
		t.Errorf("graph shape = %q, want %q", got, want)
	}
}
