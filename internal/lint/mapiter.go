package lint

import (
	"go/ast"
	"go/types"
)

// writeFuncs are callee names that make map-iteration order observable:
// stream writes, prints, and hash feeds.
var writeFuncs = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Sum": true, "Sum256": true, "Sum512": true,
}

// MapIter flags `for range` over a map inside determinism-critical packages
// when the loop body makes the iteration order observable — by writing
// output, feeding a hash, or appending to a slice that is never sorted
// afterwards in the same block. Go randomizes map iteration order, so any
// such loop breaks the run-to-run byte-identity the pipeline guarantees.
//
// The accepted idioms are the ones the codebase already uses: collect the
// keys, sort them, and range over the sorted slice (`sortedKeys`), or
// append inside the loop and sort the result before it escapes
// (`sort.Slice(keys, ...)` directly after the loop). Per-key writes into
// another map (`out[k] = append(out[k], v)`) are order-independent and not
// flagged.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flags order-sensitive `for range` over maps in determinism-critical packages; " +
		"iterate sorted keys instead",
	// Everything whose output feeds a byte-identity or stable-wire
	// invariant: consolidated DB ordering, snapshot encoding, report
	// rendering, frame materialization, query results, stats summaries,
	// the serving layer's rendered responses and metrics text, and the
	// load harness's deterministic query mixes.
	Scope: []string{
		"internal/core",
		"internal/snapshot",
		"internal/snapshot2",
		"internal/report",
		"internal/frame",
		"internal/query",
		"internal/stats",
		"internal/serve",
		"internal/loadgen",
	},
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, stmt := range block.List {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				if _, ok := pass.Info.TypeOf(rs.X).Underlying().(*types.Map); !ok {
					continue
				}
				checkMapRange(pass, rs, block.List[i+1:])
			}
			return true
		})
	}
	return nil
}

// checkMapRange inspects one range-over-map body; rest is the statement
// tail of the enclosing block, scanned for the append-then-sort idiom.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	var appended []*ast.Ident // plain-ident append targets, in source order
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && writeFuncs[sel.Sel.Name] {
				pass.Reportf(rs.For, "write to %s inside `for range` over a map: map iteration order is random; iterate sorted keys instead", selString(sel))
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				// Appending to an indexed element (out[k] = append(out[k], v))
				// touches each key once and is order-independent; only a
				// plain slice variable accumulates in iteration order.
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					appended = append(appended, id)
				}
			}
		}
		return true
	})
	for _, id := range appended {
		if !sortedAfter(pass, id, rest) {
			pass.Reportf(rs.For, "%q is appended in map-iteration order and never sorted in this block; sort it before use or range over sorted keys", id.Name)
		}
	}
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether any statement in rest sorts the object id
// refers to, via a sort.* or slices.* call that mentions it (including
// inside a less-func closure).
func sortedAfter(pass *Pass, id *ast.Ident, rest []ast.Stmt) bool {
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSortCall(pass, call) {
				return true
			}
			ast.Inspect(call, func(m ast.Node) bool {
				if ref, ok := m.(*ast.Ident); ok && pass.Info.Uses[ref] == obj {
					found = true
				}
				return !found
			})
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isSortCall reports whether call invokes the sort or slices package.
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	pkg := calleePkg(pass, call)
	return pkg == "sort" || pkg == "slices"
}

// calleePkg returns the import path of the package a pkg.Func call selects
// from, or "" if the callee is not a package-level selector.
func calleePkg(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// selString renders pkg.Func / recv.Method for diagnostics.
func selString(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
