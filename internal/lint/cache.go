package lint

// Incremental findings cache: a content-hash-keyed per-package diagnostics
// store, so a warm `avlint -cache-dir …` re-analyzes only the packages
// whose inputs changed and the packages that depend on them.
//
// Soundness rests on one property every analyzer in the suite holds: a
// package's diagnostics are a pure function of (a) the analyzer set with
// versions, (b) the package's own files — tests included — and (c) the
// source of its transitive in-module import closure (the interprocedural
// and module-scope analyzers read dependency function bodies, never
// anything outside the closure). The cache key hashes exactly those
// inputs, plus the Go toolchain version standing in for the standard
// library. Editing one file therefore misses that package and every
// reverse dependency — their closure hashes change — while unrelated
// packages keep hitting; bumping an Analyzer.Version misses everything.
//
// Entries are written atomically (temp file + rename) and any unreadable,
// corrupt, or mismatched entry is a miss, never an error: the cache can
// slow a run down, but it can never change an answer. Findings are stored
// with module-root-relative filenames and re-anchored on load, so a hit
// reproduces the cold run's diagnostics byte for byte.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// cacheSchema versions the entry format itself; bump it when the encoding
// or key recipe changes.
const cacheSchema = 1

// CacheStats reports one cached run's hit/miss split.
type CacheStats struct {
	// Hits and Misses count target packages served from / absent from the
	// cache.
	Hits, Misses int
	// MissPaths lists the re-analyzed packages' import paths, sorted.
	MissPaths []string
}

// cacheFinding is one stored diagnostic, with its file path relative to
// the module root so entries survive checkout moves.
type cacheFinding struct {
	File     string `json:"file"`
	Offset   int    `json:"offset"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// cacheEntry is one package's stored findings. Key is repeated inside the
// entry as a self-check against renamed or truncated files.
type cacheEntry struct {
	Key      string         `json:"key"`
	Findings []cacheFinding `json:"findings"`
}

// RunCachedTimed is RunTimed behind the findings cache: it lists the
// target packages, serves unchanged ones from cacheDir, loads and analyzes
// only the misses, refreshes their entries, and returns the merged
// diagnostics in the canonical order. Timings cover only the analyzers
// that actually ran (a fully warm run reports none).
func RunCachedTimed(dir, cacheDir string, workers int, analyzers []*Analyzer, patterns ...string) ([]Diagnostic, Timings, CacheStats, error) {
	root, err := moduleRootDir(dir)
	if err != nil {
		return nil, nil, CacheStats{}, err
	}
	targets, err := goList(dir, append([]string{
		"-json=ImportPath,Dir,GoFiles,TestGoFiles,XTestGoFiles,Imports,TestImports,XTestImports"}, patterns...))
	if err != nil {
		return nil, nil, CacheStats{}, err
	}
	deps, err := goList(dir, append([]string{
		"-deps", "-test", "-json=ImportPath,Dir,GoFiles,Standard,Imports"}, patterns...))
	if err != nil {
		return nil, nil, CacheStats{}, err
	}
	h := &cacheHasher{
		root:    root,
		listed:  map[string]listedPkg{},
		content: map[string]string{},
		closure: map[string]string{},
	}
	// Same test-variant fold as the loader: "pkg [pkg.test]" entries
	// collapse onto the base path, first (base) entry winning.
	for _, p := range deps {
		base, _, _ := strings.Cut(p.ImportPath, " ")
		if strings.HasSuffix(base, ".test") {
			continue
		}
		if _, ok := h.listed[base]; ok {
			continue
		}
		p.ImportPath = base
		h.listed[base] = p
	}

	descr := analyzerDescriptor(analyzers)
	keys := make([]string, len(targets))
	for i, t := range targets {
		k, err := h.targetKey(descr, t)
		if err != nil {
			return nil, nil, CacheStats{}, err
		}
		keys[i] = k
	}

	var diags []Diagnostic
	stats := CacheStats{}
	missIdx := make([]int, 0, len(targets))
	for i, t := range targets {
		if found, ok := readCacheEntry(cacheDir, keys[i], root); ok {
			stats.Hits++
			diags = append(diags, found...)
			continue
		}
		stats.Misses++
		stats.MissPaths = append(stats.MissPaths, t.ImportPath)
		missIdx = append(missIdx, i)
	}
	sort.Strings(stats.MissPaths)

	times := Timings{}
	if len(missIdx) > 0 {
		missPaths := make([]string, len(missIdx))
		dirOf := map[string]int{}
		for j, i := range missIdx {
			missPaths[j] = targets[i].ImportPath
			dirOf[targets[i].Dir] = i
		}
		pkgs, err := LoadModuleParallel(dir, workers, missPaths...)
		if err != nil {
			return nil, nil, CacheStats{}, err
		}
		fresh, t, err := RunTimed(pkgs, analyzers, workers)
		if err != nil {
			return nil, nil, CacheStats{}, err
		}
		times = t
		// Group the fresh diagnostics back onto their targets (analyzers
		// only report at positions inside the package's own directory) and
		// refresh each missed entry — zero-finding packages included, or
		// they would miss forever.
		byTarget := map[int][]Diagnostic{}
		for _, d := range fresh {
			i, ok := dirOf[filepath.Dir(d.Pos.Filename)]
			if !ok {
				return nil, nil, CacheStats{}, fmt.Errorf("lint: cache: diagnostic outside any target: %s", d.Pos.Filename)
			}
			byTarget[i] = append(byTarget[i], d)
		}
		for _, i := range missIdx {
			if err := writeCacheEntry(cacheDir, keys[i], root, byTarget[i]); err != nil {
				return nil, nil, CacheStats{}, err
			}
		}
		diags = append(diags, fresh...)
	}
	sortDiagnostics(diags)
	return diags, times, stats, nil
}

// analyzerDescriptor renders the analyzer set as a stable "name@version"
// list for the cache key.
func analyzerDescriptor(analyzers []*Analyzer) string {
	parts := make([]string, len(analyzers))
	for i, a := range analyzers {
		parts[i] = fmt.Sprintf("%s@%d", a.Name, a.Version)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// cacheHasher memoizes per-package content and transitive closure hashes
// for one run.
type cacheHasher struct {
	root    string
	listed  map[string]listedPkg
	content map[string]string
	closure map[string]string
}

// targetKey derives one target package's cache key: schema, toolchain,
// analyzer set, import path, the package's own content (test files
// included), and the closure hashes of its in-module imports (test
// imports included — in-package tests type-check against them).
func (h *cacheHasher) targetKey(descr string, t listedPkg) (string, error) {
	sum := sha256.New()
	fmt.Fprintf(sum, "schema %d\ngo %s\nanalyzers %s\npackage %s\n",
		cacheSchema, runtime.Version(), descr, t.ImportPath)
	files := append(append(append([]string{}, t.GoFiles...), t.TestGoFiles...), t.XTestGoFiles...)
	content, err := h.contentHash(t.ImportPath+" (target)", t.Dir, files)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(sum, "content %s\n", content)
	imports := append(append(append([]string{}, t.Imports...), t.TestImports...), t.XTestImports...)
	sort.Strings(imports)
	prev := ""
	for _, imp := range imports {
		if imp == prev || imp == t.ImportPath {
			continue
		}
		prev = imp
		c, err := h.closureHash(imp)
		if err != nil {
			return "", err
		}
		if c == "" {
			continue // stdlib or unlisted: covered by the toolchain version
		}
		fmt.Fprintf(sum, "dep %s %s\n", imp, c)
	}
	return hex.EncodeToString(sum.Sum(nil)), nil
}

// closureHash hashes an in-module dependency's own sources plus,
// transitively, everything it imports in-module. "" for stdlib and
// unlisted paths. Import graphs are acyclic, so plain recursion with
// memoization terminates.
func (h *cacheHasher) closureHash(path string) (string, error) {
	if c, ok := h.closure[path]; ok {
		return c, nil
	}
	lp, ok := h.listed[path]
	if !ok || lp.Standard {
		h.closure[path] = ""
		return "", nil
	}
	sum := sha256.New()
	content, err := h.contentHash(path, lp.Dir, lp.GoFiles)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(sum, "content %s\n", content)
	imports := append([]string{}, lp.Imports...)
	sort.Strings(imports)
	prev := ""
	for _, imp := range imports {
		if imp == prev {
			continue
		}
		prev = imp
		c, err := h.closureHash(imp)
		if err != nil {
			return "", err
		}
		if c != "" {
			fmt.Fprintf(sum, "dep %s %s\n", imp, c)
		}
	}
	c := hex.EncodeToString(sum.Sum(nil))
	h.closure[path] = c
	return c, nil
}

// contentHash hashes a package's files: for each, the module-root-relative
// name and the bytes. Memoized under memoKey (targets hash test files on
// top of what the dep view hashes, so the two views get distinct keys).
func (h *cacheHasher) contentHash(memoKey, dir string, files []string) (string, error) {
	if c, ok := h.content[memoKey]; ok {
		return c, nil
	}
	sorted := append([]string{}, files...)
	sort.Strings(sorted)
	sum := sha256.New()
	for _, f := range sorted {
		full := filepath.Join(dir, f)
		buf, err := os.ReadFile(full)
		if err != nil {
			return "", fmt.Errorf("lint: cache: %w", err)
		}
		fmt.Fprintf(sum, "file %s %d\n", h.relPath(full), len(buf))
		sum.Write(buf)
	}
	c := hex.EncodeToString(sum.Sum(nil))
	h.content[memoKey] = c
	return c, nil
}

// relPath renders path relative to the module root (slash-separated);
// paths outside the root stay absolute.
func (h *cacheHasher) relPath(path string) string {
	if rel, err := filepath.Rel(h.root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// readCacheEntry loads one package's findings by key. Any failure —
// missing file, corrupt JSON, key mismatch — is a miss, never an error.
func readCacheEntry(cacheDir, key, root string) ([]Diagnostic, bool) {
	buf, err := os.ReadFile(filepath.Join(cacheDir, key+".json"))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(buf, &e); err != nil || e.Key != key {
		return nil, false
	}
	diags := make([]Diagnostic, 0, len(e.Findings))
	for _, f := range e.Findings {
		name := filepath.FromSlash(f.File)
		if !filepath.IsAbs(name) {
			name = filepath.Join(root, name)
		}
		diags = append(diags, Diagnostic{
			Analyzer: f.Analyzer,
			Pos: token.Position{
				Filename: name,
				Offset:   f.Offset,
				Line:     f.Line,
				Column:   f.Column,
			},
			Message: f.Message,
		})
	}
	return diags, true
}

// writeCacheEntry stores one package's findings atomically: temp file in
// the cache directory, then rename.
func writeCacheEntry(cacheDir, key, root string, diags []Diagnostic) error {
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return fmt.Errorf("lint: cache: %w", err)
	}
	e := cacheEntry{Key: key, Findings: make([]cacheFinding, 0, len(diags))}
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		} else {
			name = filepath.ToSlash(name)
		}
		e.Findings = append(e.Findings, cacheFinding{
			File:     name,
			Offset:   d.Pos.Offset,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	buf, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(cacheDir, "entry-*.tmp")
	if err != nil {
		return fmt.Errorf("lint: cache: %w", err)
	}
	if _, err := tmp.Write(append(buf, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(cacheDir, key+".json")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("lint: cache: %w", err)
	}
	return nil
}

// moduleRootDir resolves the root directory of the module containing dir.
func moduleRootDir(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go list -m: %v\n%s", err, stderr.String())
	}
	root := strings.TrimSpace(string(out))
	if root == "" {
		return "", fmt.Errorf("lint: go list -m reported no module directory")
	}
	return root, nil
}
