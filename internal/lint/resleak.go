package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"avfda/internal/lint/cfg"
)

// Resleak flags resources acquired but not provably closed, released, or
// handed off on every CFG path to return: opened files (os.Open family),
// HTTP response bodies (http.Get family, Client.Do), mapped snapshot views
// (snapshot2.Open/OpenSeed), sync.Pool borrows, and module helpers whose
// summary says they return a caller-owned resource. A resource stops being
// the caller's problem when it is returned, sent, stored away, or passed
// whole to a callee — unless the callee's interprocedural summary proves
// it releases the operand on all paths, in which case the pass counts it
// as closed (the relayResponse/defer-in-helper idiom). The `resp, err :=
// http.Get(u); if err != nil { return err }` contract is modeled: on the
// error edge the resource is nil and owes no Close.
//
// Known false negatives (deliberate, to keep the clean-tree guarantee
// FP-free): resources laundered through interface or func-value calls,
// aliased before close, closed only inside an SCC-recursive helper, or
// handed to a helper that neither provably releases nor returns them.
var Resleak = &Analyzer{
	Name: "resleak",
	Doc: "flags files, response bodies, snapshot views, and pool borrows not " +
		"closed/released on every path to return (interprocedural: a helper " +
		"whose summary closes its argument counts)",
	Run: runResleak,
}

// releaseNames are method names that release the resource rooted at their
// receiver chain: f.Close(), resp.Body.Close(), view.Close(), v.Release().
var releaseNames = map[string]bool{"Close": true, "Release": true}

// resFact is one live resource: what it is, where it was acquired, and the
// error variable (if any) assigned alongside it.
type resFact struct {
	kind   string
	pos    token.Pos
	errObj types.Object
}

// resState maps live resource objects to their facts. The join is union
// (may-leak), so a resource released on one arm but not the other survives
// to the exit report.
type resState map[types.Object]resFact

// resEngine is the shared machinery between the caller-side analyzer and
// the must-release summary computation.
type resEngine struct {
	info *types.Info
	sums *summaries
}

// acquires classifies a call that returns a resource the caller owns,
// returning its kind and the index of the resource in the call's results.
func (e *resEngine) acquires(call *ast.CallExpr) (string, int, bool) {
	fn, _ := calleeFunc(e.info, call)
	if fn == nil {
		return "", 0, false
	}
	switch {
	case funcIs(fn, "os", "", "Open", "Create", "OpenFile", "CreateTemp"):
		return "file", 0, true
	case funcIs(fn, "net/http", "", "Get", "Post", "PostForm", "Head"),
		funcIs(fn, "net/http", "Client", "Do", "Get", "Post", "PostForm", "Head"):
		return "response body", 0, true
	case funcIs(fn, "internal/snapshot2", "", "Open", "OpenSeed"):
		return "snapshot view", 0, true
	case funcIs(fn, "sync", "Pool", "Get"):
		return "pool borrow", 0, true
	}
	if sum := e.sums.release(fn); sum != nil && sum.ReturnsResource {
		return sum.ResourceKind, sum.ResourceResult, true
	}
	return "", 0, false
}

// releasedRoots returns the root objects one call releases: Close/Release
// methods rooted at the object (resp.Body.Close() releases resp),
// Pool.Put of the borrow, and module callees whose summary proves an
// operand released.
func (e *resEngine) releasedRoots(call *ast.CallExpr) []types.Object {
	var out []types.Object
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && releaseNames[sel.Sel.Name] {
		if o := rootObj(e.info, sel.X); o != nil {
			out = append(out, o)
		}
	}
	fn, args := calleeFunc(e.info, call)
	if fn == nil {
		return out
	}
	if funcIs(fn, "sync", "Pool", "Put") && len(call.Args) == 1 {
		if o := wholeIdentObj(e.info, call.Args[0]); o != nil {
			out = append(out, o)
		}
	}
	if sum := e.sums.release(fn); sum != nil {
		for i, rel := range sum.Releases {
			if rel && i < len(args) {
				if o := rootObj(e.info, args[i]); o != nil {
					out = append(out, o)
				}
			}
		}
	}
	return out
}

// callEffects applies every call inside a block node to the state:
// released roots are removed as closed; a tracked resource passed whole as
// an argument without a proven release transfers ownership somewhere this
// analysis cannot see, so it is untracked (false-negative direction,
// never a false positive). Projections like io.ReadAll(resp.Body) are not
// ownership transfers and keep the resource tracked.
func (e *resEngine) callEffects(n ast.Node, s resState) {
	scanShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, o := range e.releasedRoots(call) {
			delete(s, o)
		}
		for _, arg := range call.Args {
			if o := wholeIdentObj(e.info, arg); o != nil {
				delete(s, o)
			}
		}
		return true
	})
}

// untrackWhole drops tracking when e appears as a whole value (aliasing,
// returning, sending — ownership moved).
func (e *resEngine) untrackWhole(expr ast.Expr, s resState) {
	if o := wholeIdentObj(e.info, expr); o != nil {
		delete(s, o)
	}
}

// acquireCall unwraps `pool.Get().(*T)` and parens down to the call.
func acquireCall(expr ast.Expr) *ast.CallExpr {
	expr = unparen(expr)
	if ta, ok := expr.(*ast.TypeAssertExpr); ok {
		expr = unparen(ta.X)
	}
	call, _ := expr.(*ast.CallExpr)
	return call
}

// assignEffects handles one assignment shape: call effects, aliasing
// escapes, then new acquisitions.
func (e *resEngine) assignEffects(lhs, rhs []ast.Expr, s resState) {
	for _, r := range rhs {
		e.callEffects(r, s)
		e.untrackWhole(r, s)
	}
	// Reassigning a tracked variable abandons the old resource; storing
	// into a field escapes the new one (never tracked).
	for _, l := range lhs {
		if id, ok := unparen(l).(*ast.Ident); ok {
			delete(s, e.info.ObjectOf(id))
		}
	}
	if len(rhs) != 1 {
		return
	}
	call := acquireCall(rhs[0])
	if call == nil {
		return
	}
	kind, ri, ok := e.acquires(call)
	if !ok || ri >= len(lhs) {
		return
	}
	id, ok := unparen(lhs[ri]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := e.info.ObjectOf(id)
	if obj == nil {
		return
	}
	var errObj types.Object
	for i, l := range lhs {
		if i == ri {
			continue
		}
		if lid, ok := unparen(l).(*ast.Ident); ok && lid.Name != "_" {
			if o := e.info.ObjectOf(lid); o != nil && isErrorType(o.Type()) {
				errObj = o
			}
		}
	}
	s[obj] = resFact{kind: kind, pos: call.Pos(), errObj: errObj}
}

// transfer applies one CFG node to the live-resource state.
func (e *resEngine) transfer(n ast.Node, s resState) resState {
	switch n := n.(type) {
	case *ast.AssignStmt:
		e.assignEffects(n.Lhs, n.Rhs, s)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, name := range vs.Names {
					lhs[i] = name
				}
				e.assignEffects(lhs, vs.Values, s)
			}
		}
	case *ast.DeferStmt:
		// Deferred releases run on every path to return; counting them at
		// the defer point is what makes `defer resp.Body.Close()` satisfy
		// the all-paths obligation.
		if fl, ok := unparen(n.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(fl.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					for _, o := range e.releasedRoots(call) {
						delete(s, o)
					}
				}
				return true
			})
		} else {
			e.callEffects(n, s)
		}
	case *ast.GoStmt:
		// The spawned goroutine may close or keep the resource; either
		// way this frame can no longer prove anything about it.
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				delete(s, e.info.ObjectOf(id))
			}
			return true
		})
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			e.callEffects(r, s)
			e.untrackWhole(r, s)
		}
	case *ast.SendStmt:
		e.callEffects(n, s)
		e.untrackWhole(n.Value, s)
	case *ast.RangeStmt:
		// Loop header only (see cfg package comment).
	default:
		e.callEffects(n, s)
	}
	return s
}

func cloneRes(s resState) resState {
	out := make(resState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (e *resEngine) flow() cfg.Flow[resState] {
	return cfg.Flow[resState]{
		Entry:    resState{},
		Transfer: e.transfer,
		Clone:    cloneRes,
		Join: func(a, b resState) resState {
			out := cloneRes(a)
			for k, v := range b {
				out[k] = v
			}
			return out
		},
		Equal: func(a, b resState) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				w, ok := b[k]
				if !ok || v.pos != w.pos {
					return false
				}
			}
			return true
		},
		Branch: func(cond ast.Expr, taken bool, s resState) resState {
			if obj, errPath := errNilEdge(e.info, cond, taken); errPath {
				// Non-nil error means the paired resource is nil (the
				// stdlib constructor contract): nothing to close here.
				for k, f := range s {
					if f.errObj != nil && f.errObj == obj {
						delete(s, k)
					}
				}
			}
			return s
		},
	}
}

func runResleak(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	e := &resEngine{info: pass.Info, sums: pass.summaries()}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		funcBodies(f, func(name string, ft *ast.FuncType, body *ast.BlockStmt) {
			e.checkBody(pass, body)
		})
	}
	return nil
}

// checkBody reports the function's leaks: resources still live in the exit
// state, plus acquisitions whose result is discarded outright.
func (e *resEngine) checkBody(pass *Pass, body *ast.BlockStmt) {
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call := acquireCall(n.X); call != nil {
				if kind, _, ok := e.acquires(call); ok {
					pass.Reportf(call.Pos(), "%s acquired and immediately discarded; close it or assign it", kind)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call := acquireCall(n.Rhs[0])
			if call == nil {
				return true
			}
			kind, ri, ok := e.acquires(call)
			if !ok || ri >= len(n.Lhs) {
				return true
			}
			if id, ok := unparen(n.Lhs[ri]).(*ast.Ident); ok && id.Name == "_" {
				pass.Reportf(call.Pos(), "%s assigned to the blank identifier can never be closed", kind)
			}
		}
		return true
	})

	g := cfg.New(body)
	ins := cfg.Forward(g, e.flow())
	exit, ok := ins[g.Exit]
	if !ok {
		return
	}
	reported := map[token.Pos]bool{}
	for _, fact := range exit {
		if reported[fact.pos] {
			continue
		}
		reported[fact.pos] = true
		pass.Reportf(fact.pos, "%s acquired here is not closed/released on every path to return", fact.kind)
	}
}

// inspectSkipFuncLit walks n skipping function-literal bodies (they are
// analyzed as their own frames by funcBodies).
func inspectSkipFuncLit(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m == nil {
			return true
		}
		return f(m)
	})
}

// A relSummary is the resleak-facing summary of one module function.
type relSummary struct {
	// Releases[i] reports that operand i (receiver-first) is closed,
	// released, or returned to its pool on every path from entry to
	// return.
	Releases []bool
	// ReturnsResource marks functions whose result ResourceResult is a
	// fresh resource the caller owns (an acquirer wrapper).
	ReturnsResource bool
	ResourceResult  int
	ResourceKind    string
}

// computeRelSummary derives a function's release summary: a must-analysis
// (intersection join) over its CFG tracking which operands have been
// released, plus a syntactic pass for the acquirer-wrapper shape.
func computeRelSummary(sums *summaries, fn *types.Func, src FuncSource) *relSummary {
	ops := operandVars(fn)
	sum := &relSummary{Releases: make([]bool, len(ops))}
	e := &resEngine{info: src.Info, sums: sums}

	opIdx := map[types.Object]int{}
	for i, v := range ops {
		opIdx[v] = i
	}

	release := func(s uint64, call *ast.CallExpr) uint64 {
		for _, o := range e.releasedRoots(call) {
			if i, ok := opIdx[o]; ok {
				s |= 1 << uint(i)
			}
		}
		return s
	}
	g := cfg.New(src.Decl.Body)
	ins := cfg.Forward(g, cfg.Flow[uint64]{
		Entry: 0,
		Transfer: func(n ast.Node, s uint64) uint64 {
			if d, ok := n.(*ast.DeferStmt); ok {
				if fl, ok := unparen(d.Call.Fun).(*ast.FuncLit); ok {
					ast.Inspect(fl.Body, func(m ast.Node) bool {
						if call, ok := m.(*ast.CallExpr); ok {
							s = release(s, call)
						}
						return true
					})
					return s
				}
			}
			scanShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					s = release(s, call)
				}
				return true
			})
			return s
		},
		Join:  func(a, b uint64) uint64 { return a & b },
		Equal: func(a, b uint64) bool { return a == b },
		Clone: func(s uint64) uint64 { return s },
	})
	if rel, ok := ins[g.Exit]; ok {
		for i := range ops {
			sum.Releases[i] = rel&(1<<uint(i)) != 0
		}
	}

	// Acquirer wrappers: a return whose result is a fresh acquisition (or
	// a local holding one) hands the resource to the caller.
	acquired := map[types.Object]string{}
	inspectSkipFuncLit(src.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call := acquireCall(as.Rhs[0])
		if call == nil {
			return true
		}
		kind, ri, ok := e.acquires(call)
		if !ok || ri >= len(as.Lhs) {
			return true
		}
		if id, ok := unparen(as.Lhs[ri]).(*ast.Ident); ok && id.Name != "_" {
			if o := src.Info.ObjectOf(id); o != nil {
				acquired[o] = kind
			}
		}
		return true
	})
	inspectSkipFuncLit(src.Decl.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || sum.ReturnsResource {
			return true
		}
		for i, r := range ret.Results {
			if call := acquireCall(r); call != nil {
				if kind, _, ok := e.acquires(call); ok {
					sum.ReturnsResource, sum.ResourceResult, sum.ResourceKind = true, i, kind
					return false
				}
			}
			if o := wholeIdentObj(src.Info, r); o != nil {
				if kind, ok := acquired[o]; ok {
					sum.ReturnsResource, sum.ResourceResult, sum.ResourceKind = true, i, kind
					return false
				}
			}
		}
		return true
	})
	return sum
}
