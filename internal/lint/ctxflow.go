package lint

import (
	"go/ast"
)

// CtxFlow flags two ways of dropping an in-scope context.Context in
// internal/serve and internal/pipeline:
//
//   - calling context.Background() or context.TODO() inside a function that
//     already has a context in scope (a ctx parameter, or an *http.Request
//     whose Context() is one call away) — the fresh root context severs the
//     caller's cancellation;
//   - passing context.Background()/TODO() directly to a ctx-accepting
//     callee from a function with no context of its own — the context
//     parameter should be threaded through instead of minted at the call
//     site.
//
// The accepted idioms: derive with context.WithTimeout/WithCancel from the
// in-scope ctx, or take a ctx parameter and pass it down. Background() at
// the process root (main, tests) is out of scope by package selection.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "flags context.Background()/TODO() that discard an in-scope context, " +
		"and fresh root contexts minted at ctx-accepting call sites",
	// The packages where a context.Context is the cancellation spine: the
	// HTTP request path, the pipeline's worker fan-out, and the load
	// harness's duration-bounded request loops. Dropping the in-scope
	// context there detaches work from request deadlines and shutdown —
	// the serving-layer bug class where a cancelled client keeps a build
	// running.
	Scope: []string{
		"internal/serve",
		"internal/pipeline",
		"internal/loadgen",
	},
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		checkCtxFile(pass, f)
	}
	return nil
}

// ctxScope tracks, per function frame, whether a context is reachable.
type ctxScope struct {
	hasCtx bool
}

func checkCtxFile(pass *Pass, f *ast.File) {
	// argOf maps a context.Background()/TODO() call that appears as a direct
	// argument to the enclosing call, so the diagnostic can name the callee
	// being robbed of its caller's context.
	argOf := map[*ast.CallExpr]*ast.CallExpr{}
	ast.Inspect(f, func(n ast.Node) bool {
		outer, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, arg := range outer.Args {
			if inner, ok := arg.(*ast.CallExpr); ok && isCtxRoot(pass, inner) {
				argOf[inner] = outer
			}
		}
		return true
	})

	var walk func(n ast.Node, scope ctxScope)
	walk = func(n ast.Node, scope ctxScope) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncDecl:
				if m == n {
					return true // the frame being walked
				}
				return false
			case *ast.FuncLit:
				if m == n {
					return true
				}
				// A literal inherits the enclosing scope's context (closure
				// capture) and may add its own parameters.
				inner := scope
				if funcTypeHasCtx(pass, m.Type) {
					inner.hasCtx = true
				}
				walk(m, inner)
				return false
			case *ast.CallExpr:
				if !isCtxRoot(pass, m) {
					return true
				}
				name := "context." + m.Fun.(*ast.SelectorExpr).Sel.Name + "()"
				if scope.hasCtx {
					pass.Reportf(m.Pos(), "%s discards the in-scope context; pass ctx (or r.Context()) instead", name)
				} else if outer, isArg := argOf[m]; isArg && signatureTakesContext(pass, outer) {
					pass.Reportf(m.Pos(), "%s minted at a ctx-accepting call site; thread a context.Context parameter through %s", name, calleeName(outer))
				}
				return true
			}
			return true
		})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		walk(fd, ctxScope{hasCtx: funcTypeHasCtx(pass, fd.Type)})
		return false
	})
}

// isCtxRoot reports whether call is context.Background() or context.TODO().
func isCtxRoot(pass *Pass, call *ast.CallExpr) bool {
	if calleePkg(pass, call) != "context" {
		return false
	}
	sel := call.Fun.(*ast.SelectorExpr)
	return sel.Sel.Name == "Background" || sel.Sel.Name == "TODO"
}

// funcTypeHasCtx reports whether a function type has a parameter that is a
// context.Context or an *http.Request (whose Context() carries the request
// context).
func funcTypeHasCtx(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if isContextType(t) || isHTTPRequest(t) {
			return true
		}
	}
	return false
}

// calleeName renders the callee of a call for diagnostics.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return selString(fn)
	}
	return "the callee"
}
