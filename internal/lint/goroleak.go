package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags `go` statements in concurrent packages whose spawned work
// has no visible tether to the parent: no sync.WaitGroup call, no channel
// operation, and no context.Context reaching the goroutine. The accepted
// idioms are the ones the pipeline already uses — `wg.Add(1)` before the
// spawn with `defer wg.Done()` inside, results delivered on a channel the
// parent drains, or a context the goroutine selects on.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "flags untethered `go` statements (no WaitGroup/channel/context " +
		"link to the parent) in concurrent packages",
	// The packages whose goroutines must be tethered: the pipeline's
	// fan-out stages, the serving layer, the load harness's open-loop
	// arrival generators, and snapshot2's background verification. A
	// goroutine with no WaitGroup, channel, or context connection to its
	// parent can neither be awaited nor cancelled — it leaks on error
	// paths and outlives request deadlines, the failure mode the paper's
	// systemic-fault taxonomy files under untracked asynchronous work.
	Scope: []string{
		"internal/pipeline",
		"internal/parse",
		"internal/nlp",
		"internal/ocr",
		"internal/serve",
		"internal/loadgen",
		"internal/snapshot2",
	},
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineTethered(pass, g) {
				pass.Reportf(g.Go, "goroutine has no WaitGroup, channel, or context tether to its parent; "+
					"it cannot be awaited or cancelled — add wg.Add/Done, deliver results on a channel, or pass a context")
			}
			return true
		})
	}
	return nil
}

// goroutineTethered reports whether the spawned call is visibly connected
// to its parent. For a function literal the body is scanned for WaitGroup
// calls, channel operations, or use of a context-typed value (free or
// parameter). For a named call the tether must arrive through the receiver
// or an argument whose type carries a channel, WaitGroup, or context.
func goroutineTethered(pass *Pass, g *ast.GoStmt) bool {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if bodyHasTether(pass, lit.Body) {
			return true
		}
		// Fall through: arguments to the literal can also carry the tether
		// (go func(ch chan int) {...}(results) scans as a channel body, but
		// go func(c *client) {...}(c) may tether through c's fields).
	}
	if sel, ok := g.Call.Fun.(*ast.SelectorExpr); ok {
		if t := pass.Info.TypeOf(sel.X); t != nil && typeContainsTether(t, map[types.Type]bool{}, 0) {
			return true
		}
	}
	for _, arg := range g.Call.Args {
		if t := pass.Info.TypeOf(arg); t != nil && typeContainsTether(t, map[types.Type]bool{}, 0) {
			return true
		}
	}
	return false
}

// bodyHasTether scans a goroutine body for a WaitGroup method call, any
// channel operation (send, receive, close, range-over-channel), or any use
// of a context.Context-typed value.
func bodyHasTether(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" {
					found = true
				}
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if t := pass.Info.TypeOf(sel.X); t != nil && namedPathIs(t, "sync", "WaitGroup") {
					found = true
				}
			}
		case *ast.Ident:
			if t := pass.Info.TypeOf(n); t != nil && isContextType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}
