package lint

// Shared helpers for the flow-sensitive (CFG-based) analyzer generation:
// shallow node scanning that respects basic-block boundaries, and the type
// queries (mutexes, contexts, writers, channels) the concurrency analyzers
// classify calls with.

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// scanShallow visits n's subtree in source order, stopping at the
// boundaries that separate a cfg.Block node from code that executes
// elsewhere: function-literal bodies (another frame), go statements
// (another goroutine), and a RangeStmt's Body (its statements live in their
// own blocks; only the range header belongs to the loop-head block). The
// callback returning false prunes that subtree.
func scanShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.RangeStmt:
			if !f(m) {
				return false
			}
			// Visit the header (key, value, X) but not the body.
			for _, e := range []ast.Expr{m.Key, m.Value, m.X} {
				if e != nil {
					scanShallow(e, f)
				}
			}
			return false
		}
		if m == nil {
			return true
		}
		return f(m)
	})
}

// funcBodies yields every function body in f outside test files: FuncDecl
// bodies and FuncLit bodies, each analyzed as its own frame.
func funcBodies(f *ast.File, visit func(name string, ft *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(n.Name.Name, n.Type, n.Body)
			}
		case *ast.FuncLit:
			visit("func literal", n.Type, n.Body)
		}
		return true
	})
}

// namedPathIs reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func namedPathIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && namedPathIs(t, "context", "Context")
}

// isResponseWriter reports whether t is net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	return t != nil && namedPathIs(t, "net/http", "ResponseWriter")
}

// isHTTPRequest reports whether t is *net/http.Request.
func isHTTPRequest(t types.Type) bool {
	return t != nil && namedPathIs(t, "net/http", "Request")
}

// signatureTakesContext reports whether the call's static callee signature
// has a context.Context parameter — the convention for cancellable,
// potentially blocking operations.
func signatureTakesContext(pass *Pass, call *ast.CallExpr) bool {
	sig, ok := pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// constIntArg returns the integer constant value of e, if it is one.
func constIntValue(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}

// typeContainsTether reports whether t transitively contains a channel, a
// sync.WaitGroup, or a context.Context — the three shapes that tether a
// goroutine to its parent. Named types are memoized in seen to cut cycles;
// depth bounds pathological nesting.
func typeContainsTether(t types.Type, seen map[types.Type]bool, depth int) bool {
	if t == nil || depth > 8 || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Chan:
		return true
	case *types.Named:
		if namedPathIs(u, "sync", "WaitGroup") || isContextType(u) {
			return true
		}
		return typeContainsTether(u.Underlying(), seen, depth+1)
	case *types.Pointer:
		return typeContainsTether(u.Elem(), seen, depth+1)
	case *types.Slice:
		return typeContainsTether(u.Elem(), seen, depth+1)
	case *types.Array:
		return typeContainsTether(u.Elem(), seen, depth+1)
	case *types.Map:
		return typeContainsTether(u.Elem(), seen, depth+1) || typeContainsTether(u.Key(), seen, depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeContainsTether(u.Field(i).Type(), seen, depth+1) {
				return true
			}
		}
	}
	return false
}
