package lint_test

import (
	"errors"
	"testing"

	"avfda/internal/lint"
)

// TestAllAnalyzers pins the suite roster: names are unique, documented, and
// resolvable through ByName.
func TestAllAnalyzers(t *testing.T) {
	all := lint.All()
	if len(all) < 13 {
		t.Fatalf("suite has %d analyzers, want at least 13", len(all))
	}
	seen := map[string]bool{}
	var names []string
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v missing name, doc, or run", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		names = append(names, a.Name)
	}
	for _, want := range []string{
		"mapiter", "errsubstr", "nondeterm", "exhaustive-category",
		"lockcheck", "goroleak", "ctxflow", "httpresp",
		"resleak", "taintflow", "viewlife",
		"lockorder", "atomicmix",
	} {
		if !seen[want] {
			t.Errorf("suite %v is missing %q", names, want)
		}
	}

	resolved, err := lint.ByName(names)
	if err != nil {
		t.Fatalf("ByName(%v): %v", names, err)
	}
	if len(resolved) != len(all) {
		t.Errorf("ByName resolved %d of %d", len(resolved), len(all))
	}
	_, err = lint.ByName([]string{"nosuch"})
	var ue *lint.UnknownAnalyzerError
	if !errors.As(err, &ue) || ue.Name != "nosuch" {
		t.Errorf("ByName(nosuch) error = %v, want *UnknownAnalyzerError naming it", err)
	}
}

// TestDiagnosticString pins the file:line:col: [analyzer] message format
// that avlint prints and CI greps.
func TestDiagnosticString(t *testing.T) {
	d := lint.Diagnostic{Analyzer: "mapiter", Message: "boom"}
	d.Pos.Filename = "x.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "x.go:3:7: [mapiter] boom"; got != want {
		t.Errorf("Diagnostic.String() = %q, want %q", got, want)
	}
}
