// Package ocr simulates the optical character recognition step of the
// paper's pipeline (Stage II step 1, Google Tesseract in the original).
//
// The real study consumed scanned PDFs; what the downstream pipeline sees
// is OCR output text with characteristic defects, plus a manual-
// transcription fallback when recognition fails (low-resolution scans,
// unrecognized table formats). This engine reproduces those artifact
// classes with a configurable noise model:
//
//   - visually confusable character substitutions (0↔O, 1↔l, 5↔S, ...),
//   - dropped field separators (| and — lost in table rules),
//   - merged adjacent lines (failed line segmentation),
//
// and produces per-page confidence scores. Pages whose confidence falls
// below Config.ManualThreshold are routed to the manual-transcription
// branch: the ground-truth lines are used and ManualPages is incremented,
// exactly mirroring the paper's workflow.
package ocr

import (
	"context"
	"errors"
	"hash/fnv"
	"math/rand"
	"runtime"
	"strings"
	"sync"

	"avfda/internal/scandoc"
)

// Config parameterizes the OCR noise model.
type Config struct {
	// SubstitutionRate is the per-character probability of a confusable
	// substitution on printed pages (default 0.002). Handwritten pages
	// use HandwrittenFactor times this.
	SubstitutionRate float64
	// SeparatorDropRate is the per-separator probability of losing a
	// field separator (default 0.002).
	SeparatorDropRate float64
	// LineMergeRate is the per-line probability of merging with the next
	// line (default 0.001).
	LineMergeRate float64
	// HandwrittenFactor multiplies SubstitutionRate on handwritten pages
	// (default 4).
	HandwrittenFactor float64
	// ManualThreshold routes pages with confidence below it to manual
	// transcription (default 0.90).
	ManualThreshold float64
	// Seed drives the noise; equal seeds give identical decodes.
	Seed int64
}

// DefaultConfig returns the noise model used for the reproduction runs.
func DefaultConfig() Config {
	return Config{
		SubstitutionRate:  0.002,
		SeparatorDropRate: 0.002,
		LineMergeRate:     0.001,
		HandwrittenFactor: 4,
		ManualThreshold:   0.90,
		Seed:              1,
	}
}

// Clean returns a zero-noise configuration (OCR identity), used by the
// round-trip integrity tests and the noise ablation's baseline point.
func Clean() Config {
	c := DefaultConfig()
	c.SubstitutionRate = 0
	c.SeparatorDropRate = 0
	c.LineMergeRate = 0
	return c
}

// confusions maps characters to their visually confusable decodings.
var confusions = map[rune][]rune{
	'0': {'O'}, 'O': {'0'},
	'1': {'l', 'I'}, 'l': {'1'}, 'I': {'1', 'l'},
	'5': {'S'}, 'S': {'5'},
	'8': {'B'}, 'B': {'8'},
	'2': {'Z'}, 'Z': {'2'},
	'6': {'G'}, 'G': {'6'},
	'g': {'q'}, 'q': {'g'},
	'e': {'c'}, 'c': {'e'},
	'n': {'h'}, 'h': {'n'},
	'u': {'v'}, 'v': {'u'},
	'a': {'o'},
	't': {'f'}, 'f': {'t'},
}

// Result is the OCR decode of one document.
type Result struct {
	// DocID echoes the source document ID.
	DocID string
	// Lines is the decoded text, page breaks flattened.
	Lines []string
	// Confidence is the mean per-page confidence in [0, 1].
	Confidence float64
	// ManualPages counts pages that fell below the manual threshold and
	// were transcribed by hand (ground truth used).
	ManualPages int
	// TotalPages is the page count.
	TotalPages int
	// Substitutions, DroppedSeparators, and MergedLines count the noise
	// artifacts actually introduced.
	Substitutions     int
	DroppedSeparators int
	MergedLines       int
}

// Engine decodes scandoc documents under a noise model.
//
// Noise is derived per document from Config.Seed and the document ID, so
// every document's decode is independent of decode order: Decode, DecodeAll,
// and DecodeAllConcurrent all produce byte-identical results for the same
// configuration.
type Engine struct {
	cfg Config
}

// NewEngine validates cfg and builds an engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.SubstitutionRate < 0 || cfg.SubstitutionRate > 1 ||
		cfg.SeparatorDropRate < 0 || cfg.SeparatorDropRate > 1 ||
		cfg.LineMergeRate < 0 || cfg.LineMergeRate > 1 {
		return nil, errors.New("ocr: rates must be in [0,1]")
	}
	if cfg.HandwrittenFactor <= 0 {
		cfg.HandwrittenFactor = 4
	}
	if cfg.ManualThreshold < 0 || cfg.ManualThreshold > 1 {
		return nil, errors.New("ocr: manual threshold must be in [0,1]")
	}
	return &Engine{cfg: cfg}, nil
}

// docRNG derives the document's private noise source.
func (e *Engine) docRNG(docID string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(docID))
	return rand.New(rand.NewSource(e.cfg.Seed ^ int64(h.Sum64())))
}

// Decode runs OCR over one document.
func (e *Engine) Decode(doc *scandoc.Document) Result {
	res := Result{DocID: doc.ID, TotalPages: len(doc.Pages)}
	rng := e.docRNG(doc.ID)
	var confSum float64
	for _, page := range doc.Pages {
		lines, conf, stats := e.decodePage(page, rng)
		confSum += conf
		if conf < e.cfg.ManualThreshold {
			// Manual transcription: the paper's fallback for pages
			// Tesseract could not handle.
			res.ManualPages++
			res.Lines = append(res.Lines, page.Lines...)
			continue
		}
		res.Lines = append(res.Lines, lines...)
		res.Substitutions += stats.subs
		res.DroppedSeparators += stats.seps
		res.MergedLines += stats.merges
	}
	if res.TotalPages > 0 {
		res.Confidence = confSum / float64(res.TotalPages)
	} else {
		res.Confidence = 1
	}
	return res
}

// DecodeAll decodes every document sequentially.
func (e *Engine) DecodeAll(docs []scandoc.Document) []Result {
	out := make([]Result, len(docs))
	for i := range docs {
		out[i] = e.Decode(&docs[i])
	}
	return out
}

// DecodeAllConcurrent decodes the document set with a bounded worker pool.
// Results are identical to DecodeAll (noise is per-document, not
// per-order) and returned in input order. A canceled context abandons
// remaining work and returns the context error; workers <= 0 selects
// GOMAXPROCS.
func (e *Engine) DecodeAllConcurrent(ctx context.Context, docs []scandoc.Document, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return e.DecodeAll(docs), nil
	}
	out := make([]Result, len(docs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = e.Decode(&docs[i])
			}
		}()
	}
	var ctxErr error
feed:
	for i := range docs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if ctxErr != nil {
		return nil, ctxErr
	}
	return out, nil
}

// pageStats counts artifacts introduced on one page.
type pageStats struct {
	subs, seps, merges int
}

// decodePage applies the noise model to one page and estimates confidence.
// Confidence is modeled as the fraction of characters decoded without a
// substitution event (what a real engine reports as mean symbol
// confidence), degraded further on handwritten pages.
func (e *Engine) decodePage(p scandoc.Page, rng *rand.Rand) ([]string, float64, pageStats) {
	subRate := e.cfg.SubstitutionRate
	if p.Handwritten {
		subRate *= e.cfg.HandwrittenFactor
	}
	var st pageStats
	var chars, errsChars int
	out := make([]string, 0, len(p.Lines))
	for _, line := range p.Lines {
		var sb strings.Builder
		sb.Grow(len(line))
		for _, r := range line {
			chars++
			// Separator drop.
			if (r == '|' || r == '—') && rng.Float64() < e.cfg.SeparatorDropRate {
				st.seps++
				errsChars++
				continue
			}
			if alts, ok := confusions[r]; ok && rng.Float64() < subRate {
				sb.WriteRune(alts[rng.Intn(len(alts))])
				st.subs++
				errsChars++
				continue
			}
			sb.WriteRune(r)
		}
		out = append(out, sb.String())
	}
	// Line merges: join a line with its successor.
	for i := 0; i < len(out)-1; {
		if rng.Float64() < e.cfg.LineMergeRate {
			out[i] = out[i] + " " + out[i+1]
			out = append(out[:i+1], out[i+2:]...)
			st.merges++
			errsChars += 2
			continue
		}
		i++
	}
	conf := 1.0
	if chars > 0 {
		conf = 1 - float64(errsChars)/float64(chars)
	}
	if p.Handwritten {
		// Handwriting reads lower-confidence even when correct.
		conf -= 0.03
		if conf < 0 {
			conf = 0
		}
	}
	return out, conf, st
}
