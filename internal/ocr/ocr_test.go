package ocr

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"avfda/internal/scandoc"
)

func docOf(lines []string, handwritten bool) *scandoc.Document {
	return &scandoc.Document{
		ID:    "test-doc",
		Kind:  scandoc.DisengagementReport,
		Pages: []scandoc.Page{{Lines: lines, Handwritten: handwritten}},
	}
}

func TestCleanConfigIsIdentity(t *testing.T) {
	eng, err := NewEngine(Clean())
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{
		"Manufacturer: Waymo",
		"2015-03-14 10:22:31 | Waymo-1-car01 | Manual | highway | sunny | 0.832 s | cause text",
	}
	res := eng.Decode(docOf(lines, false))
	if res.Confidence != 1 {
		t.Errorf("clean confidence = %g", res.Confidence)
	}
	if res.Substitutions+res.DroppedSeparators+res.MergedLines != 0 {
		t.Error("clean decode introduced artifacts")
	}
	for i, l := range res.Lines {
		if l != lines[i] {
			t.Errorf("line %d altered: %q", i, l)
		}
	}
}

func TestNoisyDecodeIntroducesArtifacts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubstitutionRate = 0.05
	cfg.SeparatorDropRate = 0.05
	cfg.ManualThreshold = 0 // never fall back, we want raw noise
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, 50)
	for i := range lines {
		lines[i] = "2015-03-14 10:22:31 | Waymo-1-car01 | Manual | highway | sunny | 0.832 s | lidar failed to localize"
	}
	res := eng.Decode(docOf(lines, false))
	if res.Substitutions == 0 {
		t.Error("no substitutions at 5% rate")
	}
	if res.DroppedSeparators == 0 {
		t.Error("no dropped separators at 5% rate")
	}
	if res.Confidence >= 1 {
		t.Error("confidence should drop under noise")
	}
}

func TestManualFallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubstitutionRate = 0.5 // catastrophic scan quality
	cfg.ManualThreshold = 0.95
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := []string{strings.Repeat("S150O1l2 ", 20)}
	res := eng.Decode(docOf(lines, false))
	if res.ManualPages != 1 {
		t.Fatalf("manual pages = %d, want 1", res.ManualPages)
	}
	// Manual transcription returns ground truth.
	if res.Lines[0] != lines[0] {
		t.Error("manual fallback should return the original text")
	}
	// Manually transcribed pages contribute no artifacts.
	if res.Substitutions != 0 {
		t.Error("manual page artifacts should not be counted")
	}
}

func TestHandwrittenPagesDegradeMore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubstitutionRate = 0.02
	cfg.HandwrittenFactor = 8
	cfg.ManualThreshold = 0
	line := strings.Repeat("the vehicle stopped and the other car collided 015 ", 10)

	var printedSubs, handSubs int
	const trials = 30
	for seed := int64(0); seed < trials; seed++ {
		cfg.Seed = seed
		engP, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		printedSubs += engP.Decode(docOf([]string{line}, false)).Substitutions
		cfg.Seed = seed + 1000
		engH, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		handSubs += engH.Decode(docOf([]string{line}, true)).Substitutions
	}
	if handSubs <= printedSubs*2 {
		t.Errorf("handwritten subs %d not clearly above printed %d", handSubs, printedSubs)
	}
}

func TestLineMerge(t *testing.T) {
	cfg := Clean()
	cfg.LineMergeRate = 1 // merge everything
	cfg.ManualThreshold = 0
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Decode(docOf([]string{"aaa", "bbb", "ccc"}, false))
	if len(res.Lines) != 1 {
		t.Fatalf("lines after full merge = %d, want 1", len(res.Lines))
	}
	if res.Lines[0] != "aaa bbb ccc" {
		t.Errorf("merged line = %q", res.Lines[0])
	}
	if res.MergedLines != 2 {
		t.Errorf("merge count = %d, want 2", res.MergedLines)
	}
}

func TestDecodeDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubstitutionRate = 0.05
	cfg.ManualThreshold = 0
	lines := []string{strings.Repeat("watchdog error 2015 S5 O0 ", 20)}
	a, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Decode(docOf(lines, false))
	rb := b.Decode(docOf(lines, false))
	if ra.Lines[0] != rb.Lines[0] {
		t.Error("same seed produced different decodes")
	}
}

func TestNewEngineValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.SubstitutionRate = 1.5
	if _, err := NewEngine(bad); err == nil {
		t.Error("rate > 1: want error")
	}
	bad = DefaultConfig()
	bad.ManualThreshold = -0.1
	if _, err := NewEngine(bad); err == nil {
		t.Error("negative threshold: want error")
	}
}

func TestDecodeAll(t *testing.T) {
	eng, err := NewEngine(Clean())
	if err != nil {
		t.Fatal(err)
	}
	docs := []scandoc.Document{
		*docOf([]string{"one"}, false),
		*docOf([]string{"two"}, false),
	}
	res := eng.DecodeAll(docs)
	if len(res) != 2 || res[0].Lines[0] != "one" || res[1].Lines[0] != "two" {
		t.Errorf("DecodeAll = %+v", res)
	}
}

// Property: substitution counts grow (statistically) with the rate, and
// confidence falls.
func TestNoiseMonotonicityProperty(t *testing.T) {
	line := strings.Repeat("the vehicle 2015 S5 O0 disengaged on the highway ", 40)
	doc := docOf([]string{line}, false)
	measure := func(rate float64) (subs int, conf float64) {
		for seed := int64(0); seed < 10; seed++ {
			cfg := Clean()
			cfg.SubstitutionRate = rate
			cfg.ManualThreshold = 0
			cfg.Seed = seed
			eng, err := NewEngine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res := eng.Decode(doc)
			subs += res.Substitutions
			conf += res.Confidence
		}
		return subs, conf / 10
	}
	prevSubs := -1
	prevConf := 2.0
	for _, rate := range []float64{0, 0.005, 0.02, 0.08} {
		subs, conf := measure(rate)
		if subs <= prevSubs && rate > 0 {
			t.Errorf("substitutions not increasing at rate %g: %d <= %d", rate, subs, prevSubs)
		}
		if conf > prevConf {
			t.Errorf("confidence increased at rate %g: %g > %g", rate, conf, prevConf)
		}
		prevSubs, prevConf = subs, conf
	}
}

func TestDecodeAllConcurrentMatchesSequential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SubstitutionRate = 0.01
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]scandoc.Document, 40)
	for i := range docs {
		docs[i] = *docOf([]string{
			strings.Repeat("watchdog error 2015 S5 O0 | field | separated ", 8),
			"second line with more content 123",
		}, i%3 == 0)
		docs[i].ID = fmt.Sprintf("doc-%02d", i)
	}
	seq := eng.DecodeAll(docs)
	for _, workers := range []int{0, 1, 2, 7, 64} {
		par, err := eng.DecodeAllConcurrent(context.Background(), docs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results", workers, len(par))
		}
		for i := range seq {
			if par[i].DocID != seq[i].DocID || par[i].Substitutions != seq[i].Substitutions {
				t.Fatalf("workers=%d doc %d: stats differ", workers, i)
			}
			for j := range seq[i].Lines {
				if par[i].Lines[j] != seq[i].Lines[j] {
					t.Fatalf("workers=%d doc %d line %d differs", workers, i, j)
				}
			}
		}
	}
}

func TestDecodeAllConcurrentCancellation(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	docs := make([]scandoc.Document, 100)
	for i := range docs {
		docs[i] = *docOf([]string{strings.Repeat("x", 2000)}, false)
		docs[i].ID = fmt.Sprintf("doc-%03d", i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: must return promptly with the ctx error
	if _, err := eng.DecodeAllConcurrent(ctx, docs, 4); err == nil {
		t.Error("canceled context: want error")
	}
	if _, err := eng.DecodeAllConcurrent(ctx, docs, 1); err == nil {
		t.Error("canceled context, single worker: want error")
	}
}

func TestEmptyDocument(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Decode(&scandoc.Document{ID: "empty"})
	if res.Confidence != 1 || len(res.Lines) != 0 {
		t.Errorf("empty doc decode: %+v", res)
	}
}
