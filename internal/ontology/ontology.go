// Package ontology defines the fault tags and failure categories that the
// paper's NLP stage assigns to disengagement causes (Table III), plus the
// mapping rules between them.
//
// Tags localize a fault to a subsystem of the autonomous driving system
// (ADS); categories roll tags up into machine-learning/design faults vs
// computing-system faults (vs unknown), the axis along which the paper's
// headline "64% of disengagements are ML-related" result is computed.
package ontology

import "fmt"

// Tag is a fault tag: the finest-grained fault localization the NLP stage
// produces.
type Tag int

// Fault tags from the paper's Table III, plus IncorrectBehaviorPrediction
// which appears in the paper's Fig. 6 tag legend (the Waymo phrasing
// "incorrect behavior prediction"), plus UnknownT for causes the voting
// scheme cannot match.
const (
	// TagUnknownT marks a cause that matched no dictionary entry.
	TagUnknownT Tag = iota + 1
	// TagEnvironment is a sudden change in external factors (construction
	// zones, emergency vehicles, accidents ahead, reckless road users).
	TagEnvironment
	// TagComputerSystem is a computer-system-related problem (e.g.
	// processor overload).
	TagComputerSystem
	// TagRecognitionSystem is a failure to recognize the outside
	// environment correctly.
	TagRecognitionSystem
	// TagPlanner is a planner failure to anticipate another driver's
	// behavior or produce an adequate motion plan.
	TagPlanner
	// TagSensor is a sensor failing to localize in time.
	TagSensor
	// TagNetwork is a data rate too high for the vehicle network.
	TagNetwork
	// TagDesignBug is an unforeseen situation the AV was not designed to
	// handle.
	TagDesignBug
	// TagSoftware is a software hang, crash, or bug.
	TagSoftware
	// TagAVControllerSystem is the AV controller not responding to
	// commands (the "System" half of the paper's dual AV Controller tag).
	TagAVControllerSystem
	// TagAVControllerML is the AV controller making wrong decisions or
	// predictions (the "ML/Design" half of the dual tag).
	TagAVControllerML
	// TagHangCrash is a watchdog timer error.
	TagHangCrash
	// TagIncorrectBehaviorPrediction is an incorrect prediction of another
	// road user's behavior (Fig. 6 legend).
	TagIncorrectBehaviorPrediction
)

// numTags is the count of defined tags (for iteration/validation).
const numTags = int(TagIncorrectBehaviorPrediction)

// AllTags lists every tag in display order (Fig. 6 legend order, with the
// dual AV Controller tag split and UnknownT last).
func AllTags() []Tag {
	return []Tag{
		TagAVControllerSystem, TagAVControllerML, TagComputerSystem,
		TagDesignBug, TagEnvironment, TagHangCrash,
		TagIncorrectBehaviorPrediction, TagNetwork, TagPlanner,
		TagRecognitionSystem, TagSensor, TagSoftware, TagUnknownT,
	}
}

// String implements fmt.Stringer with the paper's display names.
func (t Tag) String() string {
	switch t {
	case TagUnknownT:
		return "Unknown-T"
	case TagEnvironment:
		return "Environment"
	case TagComputerSystem:
		return "Computer System"
	case TagRecognitionSystem:
		return "Recognition System"
	case TagPlanner:
		return "Planner"
	case TagSensor:
		return "Sensor"
	case TagNetwork:
		return "Network"
	case TagDesignBug:
		return "Design Bug"
	case TagSoftware:
		return "Software"
	case TagAVControllerSystem:
		return "AV Controller (System)"
	case TagAVControllerML:
		return "AV Controller (ML)"
	case TagHangCrash:
		return "Hang/Crash"
	case TagIncorrectBehaviorPrediction:
		return "Incorrect Behavior Prediction"
	default:
		return fmt.Sprintf("Tag(%d)", int(t))
	}
}

// Category is a root failure category: the coarse ML-vs-system axis.
type Category int

// Failure categories from Table III.
const (
	// CategoryUnknownC holds tags that fit no category (and Unknown-T).
	CategoryUnknownC Category = iota + 1
	// CategoryMLDesign covers faults in the design of the machine learning
	// system (perception, planning and control).
	CategoryMLDesign
	// CategorySystem covers computing-system faults (hardware, software).
	CategorySystem
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case CategoryUnknownC:
		return "Unknown-C"
	case CategoryMLDesign:
		return "ML/Design"
	case CategorySystem:
		return "System"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// AllCategories lists the categories in display order.
func AllCategories() []Category {
	return []Category{CategoryMLDesign, CategorySystem, CategoryUnknownC}
}

// CategoryOf maps a tag to its failure category per Table III. The paper's
// dual "AV Controller" tag is represented here as two tags with fixed
// categories.
func CategoryOf(t Tag) Category {
	switch t {
	case TagEnvironment, TagRecognitionSystem, TagPlanner, TagDesignBug,
		TagAVControllerML, TagIncorrectBehaviorPrediction:
		return CategoryMLDesign
	case TagComputerSystem, TagSensor, TagNetwork, TagSoftware,
		TagAVControllerSystem, TagHangCrash:
		return CategorySystem
	default:
		return CategoryUnknownC
	}
}

// MLSubclass splits CategoryMLDesign tags along the paper's Table IV axis:
// perception/recognition-related vs planning/control-related. It reports
// ok=false for tags outside CategoryMLDesign.
//
// Perception covers interpretation of the environment from sensor data; the
// paper explicitly counts external fault sources (construction zones,
// cyclists, weather) as perception-related (§V-A2 footnote 5).
func MLSubclass(t Tag) (perception bool, ok bool) {
	switch t {
	case TagEnvironment, TagRecognitionSystem:
		return true, true
	case TagPlanner, TagDesignBug, TagAVControllerML, TagIncorrectBehaviorPrediction:
		return false, true
	default:
		return false, false
	}
}

// Definition returns the Table III definition text for a tag.
func Definition(t Tag) string {
	switch t {
	case TagEnvironment:
		return "Sudden change in external factors (e.g., construction zones, emergency vehicles, accidents)"
	case TagComputerSystem:
		return "Computer-system-related problem (e.g., processor overload)"
	case TagRecognitionSystem:
		return "Failure to recognize outside environment correctly"
	case TagPlanner:
		return "Planner failed to anticipate the other driver's behavior"
	case TagSensor:
		return "Sensor failed to localize in time"
	case TagNetwork:
		return "Data rate too high to be handled by the network"
	case TagDesignBug:
		return "AV was not designed to handle an unforeseen situation"
	case TagSoftware:
		return "Software-related problems such as hang or crash"
	case TagAVControllerSystem:
		return "AV controller does not respond to commands"
	case TagAVControllerML:
		return "AV controller makes wrong decisions/predictions"
	case TagHangCrash:
		return "Watchdog timer error"
	case TagIncorrectBehaviorPrediction:
		return "Incorrect prediction of another road user's behavior"
	case TagUnknownT:
		return "Cause text matched no known fault tag"
	default:
		return ""
	}
}
