package ontology

import (
	"strings"
	"testing"
)

func TestAllTagsComplete(t *testing.T) {
	tags := AllTags()
	if len(tags) != numTags {
		t.Fatalf("AllTags has %d entries, want %d", len(tags), numTags)
	}
	seen := make(map[Tag]bool)
	for _, tag := range tags {
		if seen[tag] {
			t.Errorf("duplicate tag %s", tag)
		}
		seen[tag] = true
	}
}

func TestCategoryOfTableIII(t *testing.T) {
	wantML := []Tag{
		TagEnvironment, TagRecognitionSystem, TagPlanner, TagDesignBug,
		TagAVControllerML, TagIncorrectBehaviorPrediction,
	}
	wantSys := []Tag{
		TagComputerSystem, TagSensor, TagNetwork, TagSoftware,
		TagAVControllerSystem, TagHangCrash,
	}
	for _, tag := range wantML {
		if CategoryOf(tag) != CategoryMLDesign {
			t.Errorf("CategoryOf(%s) = %s, want ML/Design", tag, CategoryOf(tag))
		}
	}
	for _, tag := range wantSys {
		if CategoryOf(tag) != CategorySystem {
			t.Errorf("CategoryOf(%s) = %s, want System", tag, CategoryOf(tag))
		}
	}
	if CategoryOf(TagUnknownT) != CategoryUnknownC {
		t.Error("Unknown-T should map to Unknown-C")
	}
}

func TestAVControllerDualRule(t *testing.T) {
	// The paper's Table III gives AV Controller both categories depending
	// on the failure mode; our split tags must land on opposite sides.
	if CategoryOf(TagAVControllerSystem) == CategoryOf(TagAVControllerML) {
		t.Error("dual AV Controller tags must map to different categories")
	}
}

func TestMLSubclass(t *testing.T) {
	cases := []struct {
		tag        Tag
		perception bool
		ok         bool
	}{
		{TagEnvironment, true, true},
		{TagRecognitionSystem, true, true},
		{TagPlanner, false, true},
		{TagDesignBug, false, true},
		{TagAVControllerML, false, true},
		{TagIncorrectBehaviorPrediction, false, true},
		{TagSoftware, false, false},
		{TagUnknownT, false, false},
	}
	for _, c := range cases {
		p, ok := MLSubclass(c.tag)
		if p != c.perception || ok != c.ok {
			t.Errorf("MLSubclass(%s) = (%v, %v), want (%v, %v)", c.tag, p, ok, c.perception, c.ok)
		}
	}
}

func TestStringersAndDefinitions(t *testing.T) {
	for _, tag := range AllTags() {
		if strings.HasPrefix(tag.String(), "Tag(") {
			t.Errorf("tag %d has no display name", tag)
		}
		if Definition(tag) == "" {
			t.Errorf("tag %s has no definition", tag)
		}
	}
	for _, c := range AllCategories() {
		if strings.HasPrefix(c.String(), "Category(") {
			t.Errorf("category %d has no display name", c)
		}
	}
	if Tag(99).String() != "Tag(99)" {
		t.Error("unknown tag String fallback broken")
	}
	if Category(99).String() != "Category(99)" {
		t.Error("unknown category String fallback broken")
	}
	if Definition(Tag(99)) != "" {
		t.Error("unknown tag should have empty definition")
	}
}

func TestEveryTagHasCategory(t *testing.T) {
	for _, tag := range AllTags() {
		c := CategoryOf(tag)
		if c != CategoryMLDesign && c != CategorySystem && c != CategoryUnknownC {
			t.Errorf("tag %s has invalid category %v", tag, c)
		}
	}
}
