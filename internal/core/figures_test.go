package core

import (
	"math"
	"testing"

	"avfda/internal/calib"
	"avfda/internal/ontology"
	"avfda/internal/schema"
)

func TestDPMPerCarFigure4(t *testing.T) {
	db := truthDB(t)
	dists := db.DPMPerCar()
	if len(dists) < 6 {
		t.Fatalf("only %d manufacturers with per-car DPM", len(dists))
	}
	byMfr := make(map[schema.Manufacturer]DPMDistribution)
	for _, d := range dists {
		byMfr[d.Manufacturer] = d
	}
	// Waymo's median is ~100x below the pack (paper Fig. 4).
	waymo := byMfr[schema.Waymo].Box.Median
	benz := byMfr[schema.MercedesBenz].Box.Median
	if benz/waymo < 50 {
		t.Errorf("Benz/Waymo median DPM ratio = %.1f, want >= 50 (paper ~100x+)", benz/waymo)
	}
	// All medians inside the paper's [1e-4, 1] envelope.
	for m, d := range byMfr {
		if d.Box.Median < 1e-4 || d.Box.Median > 1.5 {
			t.Errorf("%s median DPM %.2g outside [1e-4, 1.5]", m, d.Box.Median)
		}
		if d.Box.N != len(d.Values) {
			t.Errorf("%s box N mismatch", m)
		}
	}
}

func TestCumulativeDisengagementsFigure5(t *testing.T) {
	db := truthDB(t)
	series, err := db.CumulativeDisengagements()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 6 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		// Cumulative series are non-decreasing.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Miles < s.Points[i-1].Miles ||
				s.Points[i].Disengagements < s.Points[i-1].Disengagements {
				t.Errorf("%s: cumulative series not monotone", s.Manufacturer)
				break
			}
		}
		// Strong log-log linearity for manufacturers with enough months.
		if len(s.Points) >= 10 && s.Fit.R2 < 0.8 {
			t.Errorf("%s: log-log R2 = %.3f, want >= 0.8", s.Manufacturer, s.Fit.R2)
		}
	}
}

func TestTagBreakdownFigure6(t *testing.T) {
	db := truthDB(t)
	rows := db.TagBreakdown()
	byMfr := make(map[schema.Manufacturer]TagFractions)
	for _, r := range rows {
		byMfr[r.Manufacturer] = r
	}
	// Fractions sum to ~1 per manufacturer.
	for m, r := range byMfr {
		var sum float64
		for _, f := range r.Fractions {
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s fractions sum to %.6f", m, sum)
		}
	}
	// Tesla is dominated by Unknown-T (paper: 98.35% Unknown-C).
	if f := byMfr[schema.Tesla].Fractions[ontology.TagUnknownT]; f < 0.9 {
		t.Errorf("Tesla Unknown-T fraction = %.3f, want > 0.9", f)
	}
	// Waymo's largest single tag family is recognition (perception).
	w := byMfr[schema.Waymo].Fractions
	if w[ontology.TagRecognitionSystem] < w[ontology.TagPlanner] {
		t.Error("Waymo recognition should dominate planner tags")
	}
}

func TestDPMByYearFigure7(t *testing.T) {
	db := truthDB(t)
	rows := db.DPMByYear()
	waymo := make(map[int]YearDistribution)
	for _, r := range rows {
		if r.Manufacturer == schema.Waymo {
			waymo[r.Year] = r
		}
	}
	if len(waymo) < 3 {
		t.Fatalf("Waymo years = %d, want 3", len(waymo))
	}
	// Paper: Waymo median DPM drops ~8x from 2014 to 2016.
	drop := waymo[2014].Box.Median / waymo[2016].Box.Median
	if drop < 3 {
		t.Errorf("Waymo 2014->2016 median DPM drop = %.1fx, want >= 3 (paper ~8x)", drop)
	}
	// Bosch increases (planned fault-injection campaigns).
	bosch := make(map[int]YearDistribution)
	for _, r := range rows {
		if r.Manufacturer == schema.Bosch {
			bosch[r.Year] = r
		}
	}
	if len(bosch) >= 2 {
		if bosch[2016].Box.Median <= bosch[2015].Box.Median {
			t.Error("Bosch median DPM should increase year over year")
		}
	}
}

func TestPooledLogCorrelationFigure8(t *testing.T) {
	db := truthDB(t)
	lc, err := db.PooledLogCorrelation()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: r = -0.87 at p = 7e-56. Shape target: strong negative.
	if lc.R > -0.6 || lc.R < -0.99 {
		t.Errorf("pooled log-log r = %.3f, want in [-0.99, -0.6] (paper -0.87)", lc.R)
	}
	if lc.P > 1e-10 {
		t.Errorf("pooled correlation p = %g, want < 1e-10", lc.P)
	}
	if lc.Points < 100 {
		t.Errorf("pooled points = %d, want >= 100", lc.Points)
	}
}

func TestDPMTrendFigure9(t *testing.T) {
	db := truthDB(t)
	series, err := db.DPMTrend()
	if err != nil {
		t.Fatal(err)
	}
	slopes := make(map[schema.Manufacturer]float64)
	for _, s := range series {
		if s.FitOK {
			slopes[s.Manufacturer] = s.Fit.Slope
		}
	}
	if len(slopes) < 5 {
		t.Fatalf("only %d manufacturers fitted", len(slopes))
	}
	// The paper: DPM decreases with testing "for most manufacturers ...
	// with the exception of Volkswagen, Bosch, and GMCruise". Check the
	// improvers explicitly.
	// Delphi is excluded: Table I itself forces its 2016->2017 rate up
	// (405/16,661 -> 167/3,090 miles), so its trend cannot decline.
	for _, m := range []schema.Manufacturer{
		schema.Waymo, schema.MercedesBenz, schema.Nissan,
	} {
		slope, ok := slopes[m]
		if !ok {
			t.Errorf("%s: no trend fit", m)
			continue
		}
		if slope >= 0 {
			t.Errorf("%s trend slope = %.3f, want negative", m, slope)
		}
	}
	// Bosch regresses (planned fault-injection ramp-up).
	if s, ok := slopes[schema.Bosch]; ok && s < 0 {
		t.Errorf("Bosch trend slope = %.3f, expected non-negative", s)
	}
}

func TestReactionTimesFigure10(t *testing.T) {
	db := truthDB(t)
	rows := db.ReactionTimes()
	byMfr := make(map[schema.Manufacturer]ReactionDistribution)
	for _, r := range rows {
		byMfr[r.Manufacturer] = r
	}
	// Six manufacturers report reaction times.
	for _, m := range []schema.Manufacturer{
		schema.Nissan, schema.Tesla, schema.Delphi, schema.MercedesBenz,
		schema.Volkswagen, schema.Waymo,
	} {
		if _, ok := byMfr[m]; !ok {
			t.Errorf("missing reaction distribution for %s", m)
		}
	}
	// Bosch/GM Cruise do not.
	if _, ok := byMfr[schema.Bosch]; ok {
		t.Error("Bosch should not report reaction times")
	}
	// Fleet-wide mean ~0.85 s excluding the VW outlier.
	mean, err := db.MeanReaction(3600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mean-calib.MeanReactionSeconds) > 0.25 {
		t.Errorf("mean reaction %.3f, paper %.2f", mean, calib.MeanReactionSeconds)
	}
	// The long tail: VW max is the ~4h outlier.
	if byMfr[schema.Volkswagen].Box.Max < 3600 {
		t.Error("VW outlier missing from Fig. 10 data")
	}
	// AV drivers are as alert as non-AV drivers: mean below the non-AV
	// reference (0.82-1.09 s band).
	if mean > calib.NonAVReaction+0.2 {
		t.Errorf("mean reaction %.2f far above non-AV reference %.2f", mean, calib.NonAVReaction)
	}
}

func TestReactionWeibullFitsFigure11(t *testing.T) {
	db := truthDB(t)
	for _, m := range []schema.Manufacturer{schema.MercedesBenz, schema.Waymo} {
		fit, err := db.FitReactionWeibull(m, 3600)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if fit.Weibull.K <= 0 || fit.Weibull.Lambda <= 0 {
			t.Errorf("%s: degenerate fit %+v", m, fit.Weibull)
		}
		if fit.KS > 0.08 {
			t.Errorf("%s: KS = %.3f, want <= 0.08", m, fit.KS)
		}
		want := calib.ReactionDist[m]
		if math.Abs(fit.Weibull.K-want.Shape) > 0.3*want.Shape {
			t.Errorf("%s: shape %.2f vs calibration %.2f", m, fit.Weibull.K, want.Shape)
		}
	}
	// Benz is longer-tailed (smaller shape) than Waymo, as in Fig. 11.
	benz, _ := db.FitReactionWeibull(schema.MercedesBenz, 3600)
	waymo, _ := db.FitReactionWeibull(schema.Waymo, 3600)
	if benz.Weibull.K >= waymo.Weibull.K {
		t.Errorf("Benz shape %.2f should be below Waymo %.2f", benz.Weibull.K, waymo.Weibull.K)
	}
	// Pooled exponentiated-Weibull fit converges.
	pooled, n, err := db.PooledReactionFit(3600)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1000 {
		t.Errorf("pooled n = %d", n)
	}
	if pooled.K <= 0 || pooled.Lambda <= 0 || pooled.Alpha <= 0 {
		t.Errorf("pooled fit degenerate: %+v", pooled)
	}
	// Missing manufacturer errors.
	if _, err := db.FitReactionWeibull(schema.Bosch, 3600); err == nil {
		t.Error("Bosch fit should fail (no reaction times)")
	}
}

func TestReactionKS(t *testing.T) {
	db := truthDB(t)
	// Benz (long-tailed, shape ~0.85) vs Waymo (concentrated, shape ~1.6):
	// the distributions differ significantly.
	d, p, err := db.ReactionKS(schema.MercedesBenz, schema.Waymo, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0.05 {
		t.Errorf("Benz-vs-Waymo KS D = %.3f, want clearly positive", d)
	}
	if p > 0.01 {
		t.Errorf("Benz-vs-Waymo KS p = %.4f, want significant", p)
	}
	// A manufacturer against itself: identical distributions.
	d, p, err = db.ReactionKS(schema.Waymo, schema.Waymo, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 || p != 1 {
		t.Errorf("self KS: D=%g p=%g", d, p)
	}
	// A manufacturer without reaction times errors.
	if _, _, err := db.ReactionKS(schema.Bosch, schema.Waymo, 3600); err == nil {
		t.Error("Bosch has no reaction times: want error")
	}
}

func TestAlertnessTrendsQ4(t *testing.T) {
	db := truthDB(t)
	trends, err := db.AlertnessTrends(3600)
	if err != nil {
		t.Fatal(err)
	}
	byMfr := make(map[schema.Manufacturer]AlertnessTrend)
	for _, tr := range trends {
		byMfr[tr.Manufacturer] = tr
	}
	// Paper: positive correlation for Waymo (0.19) and Benz (0.11), both
	// significant. Shape: positive and significant at 99%.
	for _, m := range []schema.Manufacturer{schema.Waymo, schema.MercedesBenz} {
		tr, ok := byMfr[m]
		if !ok {
			t.Fatalf("missing alertness trend for %s", m)
		}
		if tr.R <= 0 {
			t.Errorf("%s reaction-vs-miles r = %.3f, want positive", m, tr.R)
		}
		if tr.P > 0.01 {
			t.Errorf("%s alertness p = %.4f, want < 0.01", m, tr.P)
		}
		if tr.R > 0.6 {
			t.Errorf("%s alertness r = %.3f implausibly strong", m, tr.R)
		}
	}
}

func TestAccidentSpeedsFigure12(t *testing.T) {
	db := truthDB(t)
	samples, err := db.AccidentSpeeds()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("speed panels = %d, want 3 (AV, MV, relative)", len(samples))
	}
	for _, s := range samples {
		if s.Fit.Lambda <= 0 {
			t.Errorf("%s: bad exponential fit", s.Label)
		}
		if len(s.Values) < 20 {
			t.Errorf("%s: only %d speeds", s.Label, len(s.Values))
		}
	}
	// Paper: >80% of collisions at relative speed < 10 mph. Small-n
	// sampling noise allowed.
	if frac := db.RelativeSpeedUnder(10); frac < 0.65 {
		t.Errorf("relative speed <10mph fraction = %.2f, want > 0.65", frac)
	}
	// AV speeds are lower than other-vehicle speeds on average.
	var avMean, mvMean float64
	for _, s := range samples {
		switch s.Label {
		case "AV speed":
			avMean = 1 / s.Fit.Lambda
		case "Manual vehicle speed":
			mvMean = 1 / s.Fit.Lambda
		}
	}
	if avMean >= mvMean {
		t.Errorf("AV mean speed %.1f should be below MV %.1f", avMean, mvMean)
	}
}

func TestAccidentMilesTrend(t *testing.T) {
	db := truthDB(t)
	res, err := db.AccidentMilesTrend()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: r = 0.98 at p < 0.01. With only four manufacturer points and
	// GM Cruise's 14 accidents at ~10k miles, the published counts cannot
	// produce 0.98 (see EXPERIMENTS.md); the reproducible shape is a
	// strong positive correlation dominated by Waymo's exposure.
	if res.R < 0.7 {
		t.Errorf("accident-miles r = %.3f, want >= 0.7 (paper 0.98)", res.R)
	}
	if res.N < 4 {
		t.Errorf("accident-miles points = %d, want 4", res.N)
	}
}

func TestMilesBetweenDisengagements(t *testing.T) {
	db := truthDB(t)
	dists := db.MilesBetweenDisengagements()
	if len(dists) < 6 {
		t.Fatalf("MBD manufacturers = %d", len(dists))
	}
	byMfr := make(map[schema.Manufacturer]MBDDistribution)
	for _, d := range dists {
		byMfr[d.Manufacturer] = d
	}
	// MBD is the reciprocal view of DPM: Waymo's median MBD must dwarf the
	// pack's (paper: 262 fleet-average miles per disengagement hides a
	// ~1000x spread).
	waymo := byMfr[schema.Waymo]
	bosch := byMfr[schema.Bosch]
	if waymo.Box.Median < 50*bosch.Box.Median {
		t.Errorf("Waymo MBD median %.1f not >> Bosch %.1f", waymo.Box.Median, bosch.Box.Median)
	}
	// MBD medians are roughly 1/DPM medians.
	rel, err := db.ReliabilityVsHuman()
	if err != nil {
		t.Fatal(err)
	}
	dpm := make(map[schema.Manufacturer]float64)
	for _, r := range rel {
		dpm[r.Manufacturer] = r.MedianDPM
	}
	for m, d := range byMfr {
		if dpm[m] <= 0 {
			continue
		}
		product := d.Box.Median * dpm[m]
		if product < 0.2 || product > 5 {
			t.Errorf("%s: MBD median x DPM median = %.2f, want O(1)", m, product)
		}
	}
	// Waymo has censored (event-free) vehicles; Bosch should not.
	if waymo.CensoredVehicles == 0 {
		t.Error("Waymo should have event-free vehicles")
	}
	for _, d := range dists {
		for i := 1; i < len(d.Values); i++ {
			if d.Values[i] < d.Values[i-1] {
				t.Fatalf("%s MBD values not sorted", d.Manufacturer)
			}
		}
	}
}

func TestManufacturerListings(t *testing.T) {
	db := truthDB(t)
	all := db.Manufacturers()
	analysis := db.AnalysisManufacturers()
	if len(all) < len(analysis) {
		t.Error("analysis set should be a subset")
	}
	// Uber appears in the full set (accident) but not in analysis.
	foundUber := false
	for _, m := range all {
		if m == schema.UberATC {
			foundUber = true
		}
	}
	if !foundUber {
		t.Error("Uber missing from full manufacturer list")
	}
	for _, m := range analysis {
		if m == schema.UberATC {
			t.Error("Uber must be excluded from analysis manufacturers")
		}
	}
	if len(analysis) != 8 {
		t.Errorf("analysis manufacturers = %d, want 8", len(analysis))
	}
}
