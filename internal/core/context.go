package core

import (
	"errors"
	"fmt"
	"time"

	"avfda/internal/calib"
	"avfda/internal/frame"
	"avfda/internal/schema"
)

// Context-conditioned analysis: the paper's threats-to-validity section
// (§VI) notes that "not all miles are equivalent" — manufacturers test in
// different environments, and where the data reports road type and weather
// the paper breaks disengagements out by them. These analyses condition
// the failure data on the reported context.

// RoadRisk is one road type's share of disengagements relative to its
// share of autonomous miles (from the §III-C road mix).
type RoadRisk struct {
	Road schema.RoadType
	// Events is the disengagement count on this road type.
	Events int
	// EventShare is the fraction of all context-reporting disengagements.
	EventShare float64
	// MileShare is the fraction of autonomous miles driven on this road
	// type (paper §III-C).
	MileShare float64
	// RelativeRisk is EventShare / MileShare: >1 means the road type
	// produces more than its mileage share of disengagements.
	RelativeRisk float64
}

// RoadBreakdown conditions disengagements on road type. Events without a
// reported road type are excluded (and counted in the second return).
func (db *DB) RoadBreakdown() ([]RoadRisk, int) {
	counts := make(map[schema.RoadType]int)
	var total, unknown int
	for _, e := range db.Events {
		if e.Road == schema.RoadUnknown {
			unknown++
			continue
		}
		counts[e.Road]++
		total++
	}
	var out []RoadRisk
	for _, rt := range []schema.RoadType{
		schema.RoadCityStreet, schema.RoadHighway, schema.RoadInterstate,
		schema.RoadFreeway, schema.RoadParkingLot, schema.RoadSuburban,
		schema.RoadRural,
	} {
		n := counts[rt]
		if n == 0 {
			continue
		}
		r := RoadRisk{
			Road:      rt,
			Events:    n,
			MileShare: calib.RoadMix[rt],
		}
		if total > 0 {
			r.EventShare = float64(n) / float64(total)
		}
		if r.MileShare > 0 {
			r.RelativeRisk = r.EventShare / r.MileShare
		}
		out = append(out, r)
	}
	return out, unknown
}

// WeatherBreakdown counts disengagements per reported weather condition.
func (db *DB) WeatherBreakdown() map[schema.Weather]int {
	out := make(map[schema.Weather]int)
	for _, e := range db.Events {
		out[e.Weather]++
	}
	return out
}

// UnderreportingRow is one point of the §VI sensitivity sweep: if a
// fraction u of disengagements/accidents went unreported, the true rates
// are the observed ones scaled by 1/(1-u).
type UnderreportingRow struct {
	// Unreported is the assumed unreported fraction in [0, 1).
	Unreported float64
	// TrueDPM and TrueAPM are the corrected corpus-wide rates.
	TrueDPM, TrueAPM float64
	// RelToHuman is the corrected corpus-wide accident rate relative to
	// the 2e-6/mile human baseline.
	RelToHuman float64
}

// UnderreportingSensitivity sweeps the §VI underreporting threat: the paper
// notes that manufacturers' interpretation of "safe operation" varies and
// regulators cannot verify completeness, so observed counts are lower
// bounds. Each row reports the corrected corpus-wide rates under an assumed
// unreported fraction.
func (db *DB) UnderreportingSensitivity(fractions []float64) ([]UnderreportingRow, error) {
	var miles float64
	for _, m := range db.Mileage {
		miles += m.Miles
	}
	if miles <= 0 {
		return nil, errors.New("core: no autonomous miles")
	}
	obsDPM := float64(len(db.Events)) / miles
	obsAPM := float64(len(db.Accidents)) / miles
	out := make([]UnderreportingRow, 0, len(fractions))
	for _, u := range fractions {
		if u < 0 || u >= 1 {
			return nil, fmt.Errorf("core: unreported fraction %g outside [0,1)", u)
		}
		scale := 1 / (1 - u)
		r := UnderreportingRow{
			Unreported: u,
			TrueDPM:    obsDPM * scale,
			TrueAPM:    obsAPM * scale,
		}
		r.RelToHuman = r.TrueAPM / calib.HumanAPM
		out = append(out, r)
	}
	return out, nil
}

// EventsFrame exports the failure database's disengagements as a typed
// dataframe for ad-hoc analysis and CSV export.
func (db *DB) EventsFrame() (*frame.Frame, error) {
	n := len(db.Events)
	mfr := make([]string, n)
	vehicle := make([]string, n)
	year := make([]string, n)
	ts := make([]time.Time, n)
	cause := make([]string, n)
	tag := make([]string, n)
	category := make([]string, n)
	modality := make([]string, n)
	road := make([]string, n)
	weather := make([]string, n)
	reaction := make([]float64, n)
	for i, e := range db.Events {
		mfr[i] = string(e.Manufacturer)
		vehicle[i] = string(e.Vehicle)
		year[i] = e.ReportYear.String()
		ts[i] = e.Time
		cause[i] = e.Cause
		tag[i] = e.Tag.String()
		category[i] = e.Category.String()
		modality[i] = e.Modality.String()
		road[i] = e.Road.String()
		weather[i] = e.Weather.String()
		reaction[i] = e.ReactionSeconds
	}
	f := frame.New()
	for _, step := range []struct {
		name string
		add  func() error
	}{
		{"manufacturer", func() error { return f.AddStrings("manufacturer", mfr) }},
		{"vehicle", func() error { return f.AddStrings("vehicle", vehicle) }},
		{"reportYear", func() error { return f.AddStrings("reportYear", year) }},
		{"time", func() error { return f.AddTimes("time", ts) }},
		{"cause", func() error { return f.AddStrings("cause", cause) }},
		{"tag", func() error { return f.AddStrings("tag", tag) }},
		{"category", func() error { return f.AddStrings("category", category) }},
		{"modality", func() error { return f.AddStrings("modality", modality) }},
		{"road", func() error { return f.AddStrings("road", road) }},
		{"weather", func() error { return f.AddStrings("weather", weather) }},
		{"reactionSeconds", func() error { return f.AddFloats("reactionSeconds", reaction) }},
	} {
		if err := step.add(); err != nil {
			return nil, fmt.Errorf("core: events frame column %s: %w", step.name, err)
		}
	}
	return f, nil
}

// AccidentsFrame exports the accident reports as a typed dataframe for
// ad-hoc analysis and CSV export. Boolean fields (autonomous mode,
// redaction) are exported as 0/1 int columns.
func (db *DB) AccidentsFrame() (*frame.Frame, error) {
	n := len(db.Accidents)
	mfr := make([]string, n)
	vehicle := make([]string, n)
	year := make([]string, n)
	ts := make([]time.Time, n)
	location := make([]string, n)
	narrative := make([]string, n)
	avSpeed := make([]float64, n)
	otherSpeed := make([]float64, n)
	autonomous := make([]int64, n)
	redacted := make([]int64, n)
	for i, a := range db.Accidents {
		mfr[i] = string(a.Manufacturer)
		vehicle[i] = string(a.Vehicle)
		year[i] = a.ReportYear.String()
		ts[i] = a.Time
		location[i] = a.Location
		narrative[i] = a.Narrative
		avSpeed[i] = a.AVSpeedMPH
		otherSpeed[i] = a.OtherSpeedMPH
		if a.InAutonomousMode {
			autonomous[i] = 1
		}
		if a.Redacted {
			redacted[i] = 1
		}
	}
	f := frame.New()
	for _, step := range []struct {
		name string
		add  func() error
	}{
		{"manufacturer", func() error { return f.AddStrings("manufacturer", mfr) }},
		{"vehicle", func() error { return f.AddStrings("vehicle", vehicle) }},
		{"reportYear", func() error { return f.AddStrings("reportYear", year) }},
		{"time", func() error { return f.AddTimes("time", ts) }},
		{"location", func() error { return f.AddStrings("location", location) }},
		{"narrative", func() error { return f.AddStrings("narrative", narrative) }},
		{"avSpeedMPH", func() error { return f.AddFloats("avSpeedMPH", avSpeed) }},
		{"otherSpeedMPH", func() error { return f.AddFloats("otherSpeedMPH", otherSpeed) }},
		{"inAutonomousMode", func() error { return f.AddInts("inAutonomousMode", autonomous) }},
		{"redacted", func() error { return f.AddInts("redacted", redacted) }},
	} {
		if err := step.add(); err != nil {
			return nil, fmt.Errorf("core: accidents frame column %s: %w", step.name, err)
		}
	}
	return f, nil
}

// MileageFrame exports the monthly mileage records as a dataframe.
func (db *DB) MileageFrame() (*frame.Frame, error) {
	n := len(db.Mileage)
	mfr := make([]string, n)
	vehicle := make([]string, n)
	year := make([]string, n)
	month := make([]time.Time, n)
	miles := make([]float64, n)
	for i, m := range db.Mileage {
		mfr[i] = string(m.Manufacturer)
		vehicle[i] = string(m.Vehicle)
		year[i] = m.ReportYear.String()
		month[i] = m.Month
		miles[i] = m.Miles
	}
	f := frame.New()
	if err := f.AddStrings("manufacturer", mfr); err != nil {
		return nil, err
	}
	if err := f.AddStrings("vehicle", vehicle); err != nil {
		return nil, err
	}
	if err := f.AddStrings("reportYear", year); err != nil {
		return nil, err
	}
	if err := f.AddTimes("month", month); err != nil {
		return nil, err
	}
	if err := f.AddFloats("miles", miles); err != nil {
		return nil, err
	}
	return f, nil
}

// DPMFrame computes per-manufacturer total miles, events, and DPM through
// the dataframe layer (group-by + aggregate), demonstrating frame-based
// analysis equivalent to the direct computations.
func (db *DB) DPMFrame() (*frame.Frame, error) {
	mf, err := db.MileageFrame()
	if err != nil {
		return nil, err
	}
	sum := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	milesBy, err := mf.Aggregate([]string{"manufacturer"}, []frame.Agg{
		{Col: "miles", As: "totalMiles", Fn: sum},
	})
	if err != nil {
		return nil, err
	}
	events := db.EventsBy()
	mfrs, err := milesBy.StringsCol("manufacturer")
	if err != nil {
		return nil, err
	}
	miles, err := milesBy.Floats("totalMiles")
	if err != nil {
		return nil, err
	}
	evCol := make([]float64, len(mfrs))
	dpm := make([]float64, len(mfrs))
	for i, m := range mfrs {
		evCol[i] = float64(events[schema.Manufacturer(m)])
		if miles[i] > 0 {
			dpm[i] = evCol[i] / miles[i]
		}
	}
	if err := milesBy.AddFloats("events", evCol); err != nil {
		return nil, err
	}
	if err := milesBy.AddFloats("dpm", dpm); err != nil {
		return nil, err
	}
	return milesBy.SortBy("manufacturer")
}
