// Package core implements Stage IV of the paper's pipeline: the statistical
// analysis of the consolidated AV failure database. Each function produces
// the data behind one table or figure of the paper's evaluation (DESIGN.md
// §4 maps them); rendering lives in package report and regeneration in the
// benchmark harness.
package core

import (
	"errors"
	"sort"
	"time"

	"avfda/internal/nlp"
	"avfda/internal/ontology"
	"avfda/internal/schema"
)

// Event is one disengagement joined with its NLP classification.
type Event struct {
	schema.Disengagement
	Tag      ontology.Tag
	Category ontology.Category
}

// DB is the consolidated failure database: the output of pipeline step 4
// ("consolidated failure data" in the paper's Fig. 1) and the sole input of
// every analysis below.
type DB struct {
	// Fleets, Mileage, and Accidents come straight from the corpus.
	Fleets    []schema.Fleet
	Mileage   []schema.MonthlyMileage
	Accidents []schema.Accident
	// Events joins each disengagement with its fault tag and category.
	Events []Event
}

// Build classifies every disengagement cause in the corpus and assembles
// the database.
func Build(corpus *schema.Corpus, cls *nlp.Classifier) (*DB, error) {
	return BuildConcurrent(corpus, cls, 1)
}

// BuildConcurrent classifies the disengagement causes across a bounded
// worker pool before the ordered consolidation step. The classifier is
// read-only, so the database is identical to Build's at any worker count;
// workers <= 0 selects GOMAXPROCS.
func BuildConcurrent(corpus *schema.Corpus, cls *nlp.Classifier, workers int) (*DB, error) {
	if corpus == nil {
		return nil, errors.New("core: nil corpus")
	}
	if cls == nil {
		return nil, errors.New("core: nil classifier")
	}
	causes := make([]string, len(corpus.Disengagements))
	for i, d := range corpus.Disengagements {
		causes[i] = d.Cause
	}
	results := cls.ClassifyAllConcurrent(causes, workers)
	db := &DB{
		Fleets:    append([]schema.Fleet(nil), corpus.Fleets...),
		Mileage:   append([]schema.MonthlyMileage(nil), corpus.Mileage...),
		Accidents: append([]schema.Accident(nil), corpus.Accidents...),
		Events:    make([]Event, 0, len(corpus.Disengagements)),
	}
	for i, d := range corpus.Disengagements {
		db.Events = append(db.Events, Event{
			Disengagement: d,
			Tag:           results[i].Tag,
			Category:      results[i].Category,
		})
	}
	return db, nil
}

// BuildWithTags assembles a database from pre-assigned tags (ground truth
// or an alternative classifier), aligned with corpus.Disengagements.
func BuildWithTags(corpus *schema.Corpus, tags []ontology.Tag) (*DB, error) {
	if corpus == nil {
		return nil, errors.New("core: nil corpus")
	}
	if len(tags) != len(corpus.Disengagements) {
		return nil, errors.New("core: tags misaligned with disengagements")
	}
	db := &DB{
		Fleets:    append([]schema.Fleet(nil), corpus.Fleets...),
		Mileage:   append([]schema.MonthlyMileage(nil), corpus.Mileage...),
		Accidents: append([]schema.Accident(nil), corpus.Accidents...),
		Events:    make([]Event, 0, len(corpus.Disengagements)),
	}
	for i, d := range corpus.Disengagements {
		db.Events = append(db.Events, Event{
			Disengagement: d,
			Tag:           tags[i],
			Category:      ontology.CategoryOf(tags[i]),
		})
	}
	return db, nil
}

// Manufacturers returns the manufacturers present in the database, in the
// paper's canonical order.
func (db *DB) Manufacturers() []schema.Manufacturer {
	present := make(map[schema.Manufacturer]bool)
	for _, f := range db.Fleets {
		present[f.Manufacturer] = true
	}
	for _, m := range db.Mileage {
		present[m.Manufacturer] = true
	}
	for _, e := range db.Events {
		present[e.Manufacturer] = true
	}
	for _, a := range db.Accidents {
		present[a.Manufacturer] = true
	}
	var out []schema.Manufacturer
	for _, m := range schema.AllManufacturers() {
		if present[m] {
			out = append(out, m)
		}
	}
	return out
}

// AnalysisManufacturers returns the present manufacturers that have enough
// disengagements for statistical analysis (the paper drops Uber, BMW, Ford,
// and Honda).
func (db *DB) AnalysisManufacturers() []schema.Manufacturer {
	counts := make(map[schema.Manufacturer]int)
	for _, e := range db.Events {
		counts[e.Manufacturer]++
	}
	var out []schema.Manufacturer
	for _, m := range schema.AnalysisManufacturers() {
		if counts[m] > 0 {
			out = append(out, m)
		}
	}
	return out
}

// MilesBy returns total autonomous miles per manufacturer.
func (db *DB) MilesBy() map[schema.Manufacturer]float64 {
	out := make(map[schema.Manufacturer]float64)
	for _, m := range db.Mileage {
		out[m.Manufacturer] += m.Miles
	}
	return out
}

// EventsBy returns disengagement counts per manufacturer.
func (db *DB) EventsBy() map[schema.Manufacturer]int {
	out := make(map[schema.Manufacturer]int)
	for _, e := range db.Events {
		out[e.Manufacturer]++
	}
	return out
}

// carKey identifies one vehicle across the database.
type carKey struct {
	mfr schema.Manufacturer
	car schema.VehicleID
}

// carStats accumulates one vehicle's exposure and failures.
type carStats struct {
	miles  float64
	events int
}

// perCar aggregates miles and events per identifiable vehicle, optionally
// restricted by a time predicate on months/events.
func (db *DB) perCar(keepMonth func(time.Time) bool) map[carKey]*carStats {
	out := make(map[carKey]*carStats)
	get := func(k carKey) *carStats {
		s := out[k]
		if s == nil {
			s = &carStats{}
			out[k] = s
		}
		return s
	}
	for _, m := range db.Mileage {
		if m.Vehicle == "" {
			continue
		}
		if keepMonth != nil && !keepMonth(m.Month) {
			continue
		}
		get(carKey{m.Manufacturer, m.Vehicle}).miles += m.Miles
	}
	for _, e := range db.Events {
		if e.Vehicle == "" {
			continue
		}
		if keepMonth != nil && !keepMonth(e.Time) {
			continue
		}
		get(carKey{e.Manufacturer, e.Vehicle}).events++
	}
	return out
}

// sortedCarKeys returns the map's keys in deterministic order.
func sortedCarKeys(m map[carKey]*carStats) []carKey {
	keys := make([]carKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].mfr != keys[j].mfr {
			return keys[i].mfr < keys[j].mfr
		}
		return keys[i].car < keys[j].car
	})
	return keys
}
