package core

import (
	"math"
	"reflect"
	"testing"

	"avfda/internal/calib"
	"avfda/internal/nlp"
	"avfda/internal/ontology"
	"avfda/internal/schema"
	"avfda/internal/synth"
)

// testDB builds the database once from ground-truth tags (the analysis
// tests isolate Stage IV from NLP accuracy; the pipeline tests cover the
// NLP path).
var cachedDB *DB

func truthDB(t *testing.T) *DB {
	t.Helper()
	if cachedDB == nil {
		tr, err := synth.Generate(synth.Config{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		db, err := BuildWithTags(&tr.Corpus, tr.Tags)
		if err != nil {
			t.Fatal(err)
		}
		cachedDB = db
	}
	return cachedDB
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil); err == nil {
		t.Error("nil corpus: want error")
	}
	cls, err := nlp.NewClassifier(nlp.SeedDictionary(), nlp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(nil, cls); err == nil {
		t.Error("nil corpus with classifier: want error")
	}
	if _, err := Build(&schema.Corpus{}, nil); err == nil {
		t.Error("nil classifier: want error")
	}
	if _, err := BuildWithTags(&schema.Corpus{Disengagements: make([]schema.Disengagement, 2)}, nil); err == nil {
		t.Error("misaligned tags: want error")
	}
}

func TestBuildClassifiesEvents(t *testing.T) {
	corpus := &schema.Corpus{
		Disengagements: []schema.Disengagement{
			{Manufacturer: schema.Nissan, ReportYear: schema.Report2016,
				Time: schema.StudyStart, Cause: "Software module froze", ReactionSeconds: -1},
		},
	}
	cls, err := nlp.NewClassifier(nlp.SeedDictionary(), nlp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	db, err := Build(corpus, cls)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Events) != 1 || db.Events[0].Tag != ontology.TagSoftware {
		t.Errorf("events = %+v", db.Events)
	}
	if db.Events[0].Category != ontology.CategorySystem {
		t.Error("software should be a System fault")
	}
}

func TestBuildConcurrentMatchesBuild(t *testing.T) {
	tr, err := synth.Generate(synth.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	cls, err := nlp.NewClassifier(nlp.SeedDictionary(), nlp.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Build(&tr.Corpus, cls)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		got, err := BuildConcurrent(&tr.Corpus, cls, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: database differs from sequential Build", workers)
		}
	}
	if _, err := BuildConcurrent(nil, cls, 0); err == nil {
		t.Error("nil corpus: want error")
	}
	if _, err := BuildConcurrent(&tr.Corpus, nil, 0); err == nil {
		t.Error("nil classifier: want error")
	}
}

func TestFleetSummaryReproducesTableI(t *testing.T) {
	db := truthDB(t)
	rows := db.FleetSummary()
	byKey := make(map[schema.Manufacturer]map[schema.ReportYear]FleetRow)
	for _, r := range rows {
		if byKey[r.Manufacturer] == nil {
			byKey[r.Manufacturer] = make(map[schema.ReportYear]FleetRow)
		}
		byKey[r.Manufacturer][r.ReportYear] = r
	}
	for m, years := range calib.TableI {
		for y, want := range years {
			if !want.Reported() {
				continue
			}
			got, ok := byKey[m][y]
			if !ok {
				t.Errorf("missing Table I row %s %s", m, y)
				continue
			}
			if got.Cars != want.Cars {
				t.Errorf("%s %s cars = %d, want %d", m, y, got.Cars, want.Cars)
			}
			if want.Disengagements >= 0 && got.Disengagements != want.Disengagements {
				t.Errorf("%s %s disengagements = %d, want %d", m, y, got.Disengagements, want.Disengagements)
			}
			if want.Miles >= 0 && math.Abs(got.Miles-want.Miles) > 0.01 {
				t.Errorf("%s %s miles = %.2f, want %.2f", m, y, got.Miles, want.Miles)
			}
			wantAcc := want.Accidents
			if wantAcc < 0 {
				wantAcc = 0
			}
			if got.Accidents != wantAcc {
				t.Errorf("%s %s accidents = %d, want %d", m, y, got.Accidents, wantAcc)
			}
		}
	}
}

func TestCategoryBreakdownReproducesTableIV(t *testing.T) {
	db := truthDB(t)
	rows := db.CategoryBreakdown()
	byMfr := make(map[schema.Manufacturer]CategoryRow)
	for _, r := range rows {
		byMfr[r.Manufacturer] = r
	}
	const tol = 6.0
	for m, want := range calib.TableIV {
		got, ok := byMfr[m]
		if !ok {
			t.Errorf("missing Table IV row for %s", m)
			continue
		}
		if math.Abs(got.PerceptionPct-want.PerceptionPct) > tol {
			t.Errorf("%s perception %.1f vs paper %.1f", m, got.PerceptionPct, want.PerceptionPct)
		}
		if math.Abs(got.PlannerPct-want.PlannerPct) > tol {
			t.Errorf("%s planner %.1f vs paper %.1f", m, got.PlannerPct, want.PlannerPct)
		}
		if math.Abs(got.SystemPct-want.SystemPct) > tol {
			t.Errorf("%s system %.1f vs paper %.1f", m, got.SystemPct, want.SystemPct)
		}
		if math.Abs(got.UnknownPct-want.UnknownPct) > tol {
			t.Errorf("%s unknown %.1f vs paper %.1f", m, got.UnknownPct, want.UnknownPct)
		}
	}
	// Headline shares.
	s := db.OverallCategoryShares()
	if math.Abs(s.MLDesign-calib.MLDesignShare) > 0.05 {
		t.Errorf("ML/Design share %.3f vs paper %.2f", s.MLDesign, calib.MLDesignShare)
	}
	if math.Abs(s.Perception-calib.PerceptionShare) > 0.05 {
		t.Errorf("perception share %.3f vs paper %.2f", s.Perception, calib.PerceptionShare)
	}
	if math.Abs(s.Planner-calib.PlannerShare) > 0.05 {
		t.Errorf("planner share %.3f vs paper %.2f", s.Planner, calib.PlannerShare)
	}
	if math.Abs(s.System-calib.SystemShare) > 0.05 {
		t.Errorf("system share %.3f vs paper %.3f", s.System, calib.SystemShare)
	}
}

func TestModalityBreakdownReproducesTableV(t *testing.T) {
	db := truthDB(t)
	byMfr := make(map[schema.Manufacturer]ModalityRow)
	for _, r := range db.ModalityBreakdown() {
		byMfr[r.Manufacturer] = r
	}
	const tol = 5.0
	for m, want := range calib.TableV {
		got, ok := byMfr[m]
		if !ok {
			t.Errorf("missing Table V row for %s", m)
			continue
		}
		if math.Abs(got.AutomaticPct-want.AutomaticPct) > tol ||
			math.Abs(got.ManualPct-want.ManualPct) > tol ||
			math.Abs(got.PlannedPct-want.PlannedPct) > tol {
			t.Errorf("%s modality = %.1f/%.1f/%.1f, paper %.1f/%.1f/%.1f",
				m, got.AutomaticPct, got.ManualPct, got.PlannedPct,
				want.AutomaticPct, want.ManualPct, want.PlannedPct)
		}
	}
}

func TestAccidentSummaryReproducesTableVI(t *testing.T) {
	db := truthDB(t)
	byMfr := make(map[schema.Manufacturer]AccidentRow)
	for _, r := range db.AccidentSummary() {
		byMfr[r.Manufacturer] = r
	}
	for m, want := range calib.TableVI {
		got, ok := byMfr[m]
		if !ok {
			t.Errorf("missing Table VI row for %s", m)
			continue
		}
		if got.Accidents != want.Accidents {
			t.Errorf("%s accidents %d vs %d", m, got.Accidents, want.Accidents)
		}
		if math.Abs(got.FractionPct-want.FractionPct) > 0.1 {
			t.Errorf("%s fraction %.2f vs %.2f", m, got.FractionPct, want.FractionPct)
		}
		if want.DPA == calib.Unreported {
			if got.DPA >= 0 {
				t.Errorf("%s should have dash DPA", m)
			}
			continue
		}
		if math.Abs(got.DPA-want.DPA)/want.DPA > 0.1 {
			t.Errorf("%s DPA %.1f vs paper %.0f", m, got.DPA, want.DPA)
		}
	}
}

func TestReliabilityVsHumanReproducesTableVII(t *testing.T) {
	db := truthDB(t)
	rows, err := db.ReliabilityVsHuman()
	if err != nil {
		t.Fatal(err)
	}
	byMfr := make(map[schema.Manufacturer]ReliabilityRow)
	for _, r := range rows {
		byMfr[r.Manufacturer] = r
	}
	// Median per-car DPM within 3x of the paper's medians. The paper's
	// per-car split is unpublished; only fleet aggregates are calibrated,
	// and Waymo's pooled median mixes two report years with a 4x rate gap,
	// so the achievable precision is a small constant factor, not percent.
	for m, want := range calib.TableVII {
		got, ok := byMfr[m]
		if !ok {
			t.Errorf("missing Table VII row for %s", m)
			continue
		}
		ratio := got.MedianDPM / want.MedianDPM
		if ratio < 1/3.0 || ratio > 3.0 {
			t.Errorf("%s median DPM %.5g vs paper %.5g (ratio %.2f)", m, got.MedianDPM, want.MedianDPM, ratio)
		}
	}
	// Ordering: Waymo best, Bosch/Benz worst end.
	if byMfr[schema.Waymo].MedianDPM >= byMfr[schema.Delphi].MedianDPM {
		t.Error("Waymo should have the lowest median DPM")
	}
	if byMfr[schema.Bosch].MedianDPM <= byMfr[schema.Waymo].MedianDPM*10 {
		t.Error("Bosch should be orders of magnitude worse than Waymo")
	}
	// The 15-4400x band: every manufacturer with an APM lands in it (using
	// the paper's own corrected arithmetic, i.e. APM/2e-6).
	for m, r := range byMfr {
		if r.MedianAPM < 0 {
			continue
		}
		if r.RelToHuman < 5 || r.RelToHuman > 20000 {
			t.Errorf("%s rel-to-human %.1f outside plausible band", m, r.RelToHuman)
		}
		if r.EstimateConfidence < 0 || r.EstimateConfidence > 1 {
			t.Errorf("%s estimate confidence %.3f", m, r.EstimateConfidence)
		}
	}
	// Waymo and GM Cruise clear 90% confidence; Delphi/Nissan don't.
	if byMfr[schema.Waymo].EstimateConfidence < 0.9 {
		t.Error("Waymo estimate should clear 90% confidence")
	}
	if byMfr[schema.GMCruise].EstimateConfidence < 0.9 {
		t.Error("GM Cruise estimate should clear 90% confidence")
	}
	if byMfr[schema.Delphi].EstimateConfidence >= 0.9 {
		t.Error("Delphi estimate should not clear 90%")
	}
}

func TestCrossDomainReproducesTableVIII(t *testing.T) {
	db := truthDB(t)
	rows, err := db.CrossDomainTable()
	if err != nil {
		t.Fatal(err)
	}
	byMfr := make(map[schema.Manufacturer]CrossDomainRow)
	for _, r := range rows {
		byMfr[r.Manufacturer] = r
	}
	for m, want := range calib.TableVIII {
		got, ok := byMfr[m]
		if !ok {
			t.Errorf("missing Table VIII row for %s", m)
			continue
		}
		ratio := got.VsAirline / want.VsAirline
		if ratio < 1/4.0 || ratio > 4 {
			t.Errorf("%s vs airline %.2f vs paper %.2f", m, got.VsAirline, want.VsAirline)
		}
	}
	// Shape: Waymo within single-digit multiples of airlines, better than
	// surgical robots; GM Cruise hundreds of times worse than airlines.
	if w := byMfr[schema.Waymo]; w.VsAirline > 15 || w.VsSurgicalRobot >= 1 {
		t.Errorf("Waymo cross-domain shape wrong: %+v", w)
	}
	if g := byMfr[schema.GMCruise]; g.VsAirline < 100 {
		t.Errorf("GM Cruise should be >100x worse than airlines: %+v", g)
	}
}

func TestAggregates(t *testing.T) {
	db := truthDB(t)
	agg := db.Aggregates()
	// The paper quotes 262 miles/disengagement, but its own Table I totals
	// give 1,116,605/5,328 = 209.6 (see calib); the corpus reproduces the
	// derivable figure.
	if math.Abs(agg.MilesPerDisengagement-calib.ComputedMilesPerDisengagement) > 1 {
		t.Errorf("miles/disengagement = %.1f, want %.1f (Table I totals)",
			agg.MilesPerDisengagement, calib.ComputedMilesPerDisengagement)
	}
	if math.Abs(agg.DisengagementsPerAccident-calib.MeanDisengagementsPerAccident) > 5 {
		t.Errorf("disengagements/accident = %.1f, paper ~%.0f", agg.DisengagementsPerAccident, calib.MeanDisengagementsPerAccident)
	}
}
