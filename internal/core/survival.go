package core

import (
	"errors"
	"sort"
	"time"

	"avfda/internal/schema"
	"avfda/internal/stats"
)

// Survival treatment of the §V-C2 metric: instead of averaging miles
// between disengagements (which drops event-free vehicles), estimate the
// distribution of miles-to-first-disengagement per vehicle with
// Kaplan–Meier, right-censoring vehicles that never disengaged at their
// total mileage.

// SurvivalCurve is one manufacturer's fitted miles-to-first-disengagement
// curve.
type SurvivalCurve struct {
	Manufacturer schema.Manufacturer
	KM           *stats.KaplanMeier
	// MedianMiles is the survival-median miles to first disengagement;
	// negative when censoring keeps the curve above 0.5.
	MedianMiles float64
}

// survivalObservations builds per-vehicle (miles to first event, censored)
// observations for one manufacturer. Miles accrue month by month; the first
// event's position inside its month is prorated by day.
func (db *DB) survivalObservations(m schema.Manufacturer) []stats.Observation {
	type monthMiles struct {
		month time.Time
		miles float64
	}
	mileageBy := make(map[schema.VehicleID][]monthMiles)
	for _, mm := range db.Mileage {
		if mm.Manufacturer != m || mm.Vehicle == "" {
			continue
		}
		mileageBy[mm.Vehicle] = append(mileageBy[mm.Vehicle], monthMiles{mm.Month, mm.Miles})
	}
	firstEvent := make(map[schema.VehicleID]time.Time)
	for _, e := range db.Events {
		if e.Manufacturer != m || e.Vehicle == "" {
			continue
		}
		if t, ok := firstEvent[e.Vehicle]; !ok || e.Time.Before(t) {
			firstEvent[e.Vehicle] = e.Time
		}
	}
	vehicles := make([]schema.VehicleID, 0, len(mileageBy))
	for v := range mileageBy {
		vehicles = append(vehicles, v)
	}
	sort.Slice(vehicles, func(i, j int) bool { return vehicles[i] < vehicles[j] })

	var out []stats.Observation
	for _, v := range vehicles {
		months := mileageBy[v]
		sort.Slice(months, func(i, j int) bool { return months[i].month.Before(months[j].month) })
		ev, hasEvent := firstEvent[v]
		var miles float64
		done := false
		for _, mm := range months {
			monthEnd := mm.month.AddDate(0, 1, 0)
			if hasEvent && !ev.Before(mm.month) && ev.Before(monthEnd) {
				// Event inside this month: prorate by elapsed fraction.
				frac := ev.Sub(mm.month).Hours() / monthEnd.Sub(mm.month).Hours()
				miles += mm.miles * frac
				out = append(out, stats.Observation{Time: miles})
				done = true
				break
			}
			miles += mm.miles
		}
		if !done {
			if miles <= 0 {
				continue
			}
			out = append(out, stats.Observation{Time: miles, Censored: true})
		}
	}
	return out
}

// SurvivalCurves fits per-manufacturer miles-to-first-disengagement curves
// for every analysis manufacturer with identifiable vehicles.
func (db *DB) SurvivalCurves() ([]SurvivalCurve, error) {
	var out []SurvivalCurve
	for _, m := range db.AnalysisManufacturers() {
		obs := db.survivalObservations(m)
		if len(obs) < 2 {
			continue
		}
		km, err := stats.NewKaplanMeier(obs)
		if err != nil {
			return nil, err
		}
		c := SurvivalCurve{Manufacturer: m, KM: km, MedianMiles: -1}
		if med, ok := km.MedianTime(); ok {
			c.MedianMiles = med
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, errors.New("core: no manufacturers with survival data")
	}
	return out, nil
}

// SurvivalLogRank compares two manufacturers' miles-to-first-disengagement
// curves with the log-rank test.
func (db *DB) SurvivalLogRank(a, b schema.Manufacturer) (chi2, p float64, err error) {
	return stats.LogRank(db.survivalObservations(a), db.survivalObservations(b))
}
