package core

import (
	"avfda/internal/calib"
	"avfda/internal/ontology"
	"avfda/internal/reliability"
	"avfda/internal/schema"
	"avfda/internal/stats"
)

// FleetRow is one manufacturer-year cell block of Table I.
type FleetRow struct {
	Manufacturer   schema.Manufacturer
	ReportYear     schema.ReportYear
	Cars           int // -1 when the report omits it
	Miles          float64
	Disengagements int
	Accidents      int
}

// FleetSummary reproduces Table I from the database: fleet size, miles,
// disengagements, and accidents per manufacturer and report year, in the
// paper's row order.
func (db *DB) FleetSummary() []FleetRow {
	type key struct {
		m schema.Manufacturer
		y schema.ReportYear
	}
	rows := make(map[key]*FleetRow)
	get := func(m schema.Manufacturer, y schema.ReportYear) *FleetRow {
		k := key{m, y}
		r := rows[k]
		if r == nil {
			r = &FleetRow{Manufacturer: m, ReportYear: y, Cars: -1}
			rows[k] = r
		}
		return r
	}
	for _, f := range db.Fleets {
		get(f.Manufacturer, f.ReportYear).Cars = f.Cars
	}
	for _, m := range db.Mileage {
		get(m.Manufacturer, m.ReportYear).Miles += m.Miles
	}
	for _, e := range db.Events {
		get(e.Manufacturer, e.ReportYear).Disengagements++
	}
	for _, a := range db.Accidents {
		get(a.Manufacturer, a.ReportYear).Accidents++
	}
	var out []FleetRow
	for _, m := range schema.AllManufacturers() {
		for _, y := range schema.ReportYears() {
			if r, ok := rows[key{m, y}]; ok {
				out = append(out, *r)
			}
		}
	}
	return out
}

// CategoryRow is one row of Table IV: a manufacturer's disengagements by
// root failure category, as percentages.
type CategoryRow struct {
	Manufacturer  schema.Manufacturer
	PlannerPct    float64 // ML/Design: planning & control
	PerceptionPct float64 // ML/Design: perception & recognition
	SystemPct     float64
	UnknownPct    float64
	Total         int
}

// CategoryBreakdown reproduces Table IV over the analysis manufacturers.
func (db *DB) CategoryBreakdown() []CategoryRow {
	counts := make(map[schema.Manufacturer]*CategoryRow)
	for _, e := range db.Events {
		r := counts[e.Manufacturer]
		if r == nil {
			r = &CategoryRow{Manufacturer: e.Manufacturer}
			counts[e.Manufacturer] = r
		}
		r.Total++
		switch e.Category {
		case ontology.CategoryMLDesign:
			if perception, _ := ontology.MLSubclass(e.Tag); perception {
				r.PerceptionPct++
			} else {
				r.PlannerPct++
			}
		case ontology.CategorySystem:
			r.SystemPct++
		default:
			r.UnknownPct++
		}
	}
	var out []CategoryRow
	for _, m := range db.AnalysisManufacturers() {
		r := counts[m]
		if r == nil || r.Total == 0 {
			continue
		}
		n := float64(r.Total)
		out = append(out, CategoryRow{
			Manufacturer:  m,
			PlannerPct:    100 * r.PlannerPct / n,
			PerceptionPct: 100 * r.PerceptionPct / n,
			SystemPct:     100 * r.SystemPct / n,
			UnknownPct:    100 * r.UnknownPct / n,
			Total:         r.Total,
		})
	}
	return out
}

// CategoryShares summarizes the corpus-wide category mix (the paper's
// headline: perception ~44%, planner ~20%, system ~33.6%, ML total 64%).
type CategoryShares struct {
	Perception, Planner, System, Unknown float64
	MLDesign                             float64
}

// OverallCategoryShares computes the corpus-wide fractions.
func (db *DB) OverallCategoryShares() CategoryShares {
	var s CategoryShares
	n := float64(len(db.Events))
	if n == 0 {
		return s
	}
	for _, e := range db.Events {
		switch e.Category {
		case ontology.CategoryMLDesign:
			s.MLDesign++
			if perception, _ := ontology.MLSubclass(e.Tag); perception {
				s.Perception++
			} else {
				s.Planner++
			}
		case ontology.CategorySystem:
			s.System++
		default:
			s.Unknown++
		}
	}
	s.Perception /= n
	s.Planner /= n
	s.System /= n
	s.Unknown /= n
	s.MLDesign /= n
	return s
}

// ModalityRow is one row of Table V.
type ModalityRow struct {
	Manufacturer schema.Manufacturer
	AutomaticPct float64
	ManualPct    float64
	PlannedPct   float64
	Total        int
}

// ModalityBreakdown reproduces Table V.
func (db *DB) ModalityBreakdown() []ModalityRow {
	counts := make(map[schema.Manufacturer]*ModalityRow)
	for _, e := range db.Events {
		r := counts[e.Manufacturer]
		if r == nil {
			r = &ModalityRow{Manufacturer: e.Manufacturer}
			counts[e.Manufacturer] = r
		}
		r.Total++
		switch e.Modality {
		case schema.ModalityAutomatic:
			r.AutomaticPct++
		case schema.ModalityManual:
			r.ManualPct++
		case schema.ModalityPlanned:
			r.PlannedPct++
		}
	}
	var out []ModalityRow
	for _, m := range db.AnalysisManufacturers() {
		r := counts[m]
		if r == nil || r.Total == 0 {
			continue
		}
		n := float64(r.Total)
		out = append(out, ModalityRow{
			Manufacturer: m,
			AutomaticPct: 100 * r.AutomaticPct / n,
			ManualPct:    100 * r.ManualPct / n,
			PlannedPct:   100 * r.PlannedPct / n,
			Total:        r.Total,
		})
	}
	return out
}

// AccidentRow is one row of Table VI.
type AccidentRow struct {
	Manufacturer schema.Manufacturer
	Accidents    int
	FractionPct  float64
	// DPA is disengagements per accident; negative when the manufacturer
	// reported no disengagements (Uber).
	DPA float64
}

// AccidentSummary reproduces Table VI.
func (db *DB) AccidentSummary() []AccidentRow {
	accBy := make(map[schema.Manufacturer]int)
	total := 0
	for _, a := range db.Accidents {
		accBy[a.Manufacturer]++
		total++
	}
	evBy := db.EventsBy()
	var out []AccidentRow
	for _, m := range schema.AllManufacturers() {
		n := accBy[m]
		if n == 0 {
			continue
		}
		row := AccidentRow{
			Manufacturer: m,
			Accidents:    n,
			FractionPct:  100 * float64(n) / float64(total),
			DPA:          -1,
		}
		if evBy[m] > 0 {
			dpa, err := reliability.DPA(evBy[m], n)
			if err == nil {
				row.DPA = dpa
			}
		}
		out = append(out, row)
	}
	return out
}

// ReliabilityRow is one row of Table VII.
type ReliabilityRow struct {
	Manufacturer schema.Manufacturer
	MedianDPM    float64
	// MedianAPM is computed as MedianDPM/DPA when the manufacturer has
	// accidents; negative otherwise (dash in the paper).
	MedianAPM float64
	// RelToHuman is MedianAPM / human APM; negative when APM is absent.
	RelToHuman float64
	// EstimateConfidence is the Kalra-Paddock confidence in the APM
	// estimate (the paper reports Waymo and GM Cruise at > 90%); negative
	// when APM is absent.
	EstimateConfidence float64
}

// ReliabilityVsHuman reproduces Table VII: median per-car DPM, APM via
// DPM/DPA, and the ratio to the human-driver accident rate.
func (db *DB) ReliabilityVsHuman() ([]ReliabilityRow, error) {
	medians := db.medianDPMPerCar()
	accRows := db.AccidentSummary()
	dpaBy := make(map[schema.Manufacturer]float64)
	accBy := make(map[schema.Manufacturer]int)
	for _, r := range accRows {
		dpaBy[r.Manufacturer] = r.DPA
		accBy[r.Manufacturer] = r.Accidents
	}
	var out []ReliabilityRow
	for _, m := range db.AnalysisManufacturers() {
		med, ok := medians[m]
		if !ok {
			continue
		}
		row := ReliabilityRow{
			Manufacturer:       m,
			MedianDPM:          med,
			MedianAPM:          -1,
			RelToHuman:         -1,
			EstimateConfidence: -1,
		}
		if dpa, ok := dpaBy[m]; ok && dpa > 0 {
			apm, err := reliability.APMFromDPM(med, dpa)
			if err != nil {
				return nil, err
			}
			row.MedianAPM = apm
			rel, err := reliability.RelativeToHuman(apm)
			if err != nil {
				return nil, err
			}
			row.RelToHuman = rel
			conf, err := reliability.EstimateConfidence(accBy[m], 2)
			if err != nil {
				return nil, err
			}
			row.EstimateConfidence = conf
		}
		out = append(out, row)
	}
	return out, nil
}

// medianDPMPerCar computes each manufacturer's median per-car DPM.
func (db *DB) medianDPMPerCar() map[schema.Manufacturer]float64 {
	cars := db.perCar(nil)
	byMfr := make(map[schema.Manufacturer][]float64)
	for _, k := range sortedCarKeys(cars) {
		s := cars[k]
		if s.miles <= 0 {
			continue
		}
		byMfr[k.mfr] = append(byMfr[k.mfr], float64(s.events)/s.miles)
	}
	out := make(map[schema.Manufacturer]float64, len(byMfr))
	for m, dpms := range byMfr {
		med, err := stats.Median(dpms)
		if err != nil {
			continue
		}
		out[m] = med
	}
	return out
}

// CrossDomainRow is one row of Table VIII.
type CrossDomainRow struct {
	Manufacturer    schema.Manufacturer
	APMi            float64
	VsAirline       float64
	VsSurgicalRobot float64
}

// CrossDomainTable reproduces Table VIII from the Table VII APM column.
func (db *DB) CrossDomainTable() ([]CrossDomainRow, error) {
	rel, err := db.ReliabilityVsHuman()
	if err != nil {
		return nil, err
	}
	var out []CrossDomainRow
	for _, r := range rel {
		if r.MedianAPM < 0 {
			continue
		}
		cd, err := reliability.CompareCrossDomain(r.MedianAPM)
		if err != nil {
			return nil, err
		}
		out = append(out, CrossDomainRow{
			Manufacturer:    r.Manufacturer,
			APMi:            cd.APMi,
			VsAirline:       cd.VsAirline,
			VsSurgicalRobot: cd.VsSurgicalRobot,
		})
	}
	return out, nil
}

// AggregateRatios reports the §III-C aggregates: average autonomous miles
// per disengagement and disengagements per accident across the corpus.
type AggregateRatios struct {
	MilesPerDisengagement     float64
	DisengagementsPerAccident float64
}

// Aggregates computes the corpus-wide ratios the paper quotes (262 miles
// per disengagement, 127 disengagements per accident).
func (db *DB) Aggregates() AggregateRatios {
	var miles float64
	for _, m := range db.Mileage {
		miles += m.Miles
	}
	var out AggregateRatios
	if n := len(db.Events); n > 0 {
		out.MilesPerDisengagement = miles / float64(n)
		if a := len(db.Accidents); a > 0 {
			out.DisengagementsPerAccident = float64(n) / float64(a)
		}
	}
	return out
}

// PaperCategoryTargets returns the calib Table IV row for comparison
// rendering; ok is false for manufacturers the paper does not print.
func PaperCategoryTargets(m schema.Manufacturer) (calib.CategoryPct, bool) {
	row, ok := calib.TableIV[m]
	return row, ok
}
