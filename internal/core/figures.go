package core

import (
	"errors"
	"sort"
	"time"

	"avfda/internal/ontology"
	"avfda/internal/schema"
	"avfda/internal/stats"
)

// DPMDistribution is one manufacturer's per-car DPM box plot (Fig. 4).
type DPMDistribution struct {
	Manufacturer schema.Manufacturer
	Box          stats.FiveNum
	// Values holds the underlying per-car DPMs, ascending.
	Values []float64
}

// DPMPerCar reproduces Fig. 4: the distribution of disengagements-per-mile
// across each manufacturer's cars.
func (db *DB) DPMPerCar() []DPMDistribution {
	cars := db.perCar(nil)
	byMfr := make(map[schema.Manufacturer][]float64)
	for _, k := range sortedCarKeys(cars) {
		s := cars[k]
		if s.miles <= 0 {
			continue
		}
		byMfr[k.mfr] = append(byMfr[k.mfr], float64(s.events)/s.miles)
	}
	var out []DPMDistribution
	for _, m := range db.AnalysisManufacturers() {
		vals := byMfr[m]
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		box, err := stats.BoxPlot(vals)
		if err != nil {
			continue
		}
		out = append(out, DPMDistribution{Manufacturer: m, Box: box, Values: vals})
	}
	return out
}

// CumulativePoint is one month's cumulative totals for one manufacturer.
type CumulativePoint struct {
	Month          time.Time
	Miles          float64 // cumulative autonomous miles
	Disengagements float64 // cumulative disengagement count
}

// CumulativeSeries is one manufacturer's Fig. 5 trace with its log-log fit.
type CumulativeSeries struct {
	Manufacturer schema.Manufacturer
	Points       []CumulativePoint
	// Fit is the log10-log10 linear regression of disengagements on miles.
	Fit stats.LinReg
}

// CumulativeDisengagements reproduces Fig. 5: cumulative disengagements vs
// cumulative miles per manufacturer, with linear fits in log-log space.
func (db *DB) CumulativeDisengagements() ([]CumulativeSeries, error) {
	type monthAgg struct {
		miles  float64
		events float64
	}
	byMfr := make(map[schema.Manufacturer]map[time.Time]*monthAgg)
	get := func(m schema.Manufacturer, month time.Time) *monthAgg {
		if byMfr[m] == nil {
			byMfr[m] = make(map[time.Time]*monthAgg)
		}
		a := byMfr[m][month]
		if a == nil {
			a = &monthAgg{}
			byMfr[m][month] = a
		}
		return a
	}
	for _, mm := range db.Mileage {
		get(mm.Manufacturer, mm.Month).miles += mm.Miles
	}
	for _, e := range db.Events {
		month := time.Date(e.Time.Year(), e.Time.Month(), 1, 0, 0, 0, 0, time.UTC)
		get(e.Manufacturer, month).events++
	}
	var out []CumulativeSeries
	for _, m := range db.AnalysisManufacturers() {
		months := byMfr[m]
		if len(months) == 0 {
			continue
		}
		keys := make([]time.Time, 0, len(months))
		for k := range months {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Before(keys[j]) })
		s := CumulativeSeries{Manufacturer: m}
		var cumMiles, cumEvents float64
		for _, k := range keys {
			cumMiles += months[k].miles
			cumEvents += months[k].events
			s.Points = append(s.Points, CumulativePoint{Month: k, Miles: cumMiles, Disengagements: cumEvents})
		}
		xs := make([]float64, len(s.Points))
		ys := make([]float64, len(s.Points))
		for i, p := range s.Points {
			xs[i] = p.Miles
			ys[i] = p.Disengagements
		}
		if fit, err := stats.LogLogRegression(xs, ys); err == nil {
			s.Fit = fit
		}
		out = append(out, s)
	}
	return out, nil
}

// TagFractions is one manufacturer's Fig. 6 stacked bar: the fraction of
// disengagements per fault tag.
type TagFractions struct {
	Manufacturer schema.Manufacturer
	Fractions    map[ontology.Tag]float64
	Total        int
}

// TagBreakdown reproduces Fig. 6.
func (db *DB) TagBreakdown() []TagFractions {
	counts := make(map[schema.Manufacturer]map[ontology.Tag]int)
	totals := make(map[schema.Manufacturer]int)
	for _, e := range db.Events {
		if counts[e.Manufacturer] == nil {
			counts[e.Manufacturer] = make(map[ontology.Tag]int)
		}
		counts[e.Manufacturer][e.Tag]++
		totals[e.Manufacturer]++
	}
	var out []TagFractions
	for _, m := range db.AnalysisManufacturers() {
		total := totals[m]
		if total == 0 {
			continue
		}
		fr := make(map[ontology.Tag]float64, len(counts[m]))
		for tag, n := range counts[m] {
			fr[tag] = float64(n) / float64(total)
		}
		out = append(out, TagFractions{Manufacturer: m, Fractions: fr, Total: total})
	}
	return out
}

// YearDistribution is one manufacturer-year per-car DPM box (Fig. 7).
type YearDistribution struct {
	Manufacturer schema.Manufacturer
	Year         int
	Box          stats.FiveNum
	N            int
}

// DPMByYear reproduces Fig. 7: the per-car DPM distribution aggregated by
// calendar year.
func (db *DB) DPMByYear() []YearDistribution {
	var out []YearDistribution
	for _, year := range []int{2014, 2015, 2016} {
		y := year
		cars := db.perCar(func(t time.Time) bool { return t.Year() == y })
		byMfr := make(map[schema.Manufacturer][]float64)
		for _, k := range sortedCarKeys(cars) {
			s := cars[k]
			if s.miles <= 0 {
				continue
			}
			byMfr[k.mfr] = append(byMfr[k.mfr], float64(s.events)/s.miles)
		}
		for _, m := range db.AnalysisManufacturers() {
			vals := byMfr[m]
			if len(vals) == 0 {
				continue
			}
			box, err := stats.BoxPlot(vals)
			if err != nil {
				continue
			}
			out = append(out, YearDistribution{Manufacturer: m, Year: y, Box: box, N: len(vals)})
		}
	}
	return out
}

// LogCorrelation is the Fig. 8 pooled result: the Pearson correlation of
// log10(per-car DPM) with log10(cumulative miles) over monthly snapshots of
// every car in the fleet.
type LogCorrelation struct {
	stats.PearsonResult
	// Points is the number of (car, month) snapshots pooled.
	Points int
}

// PooledLogCorrelation reproduces Fig. 8 (paper: r = -0.87, p = 7e-56).
func (db *DB) PooledLogCorrelation() (LogCorrelation, error) {
	xs, ys, err := db.carMonthLogPoints()
	if err != nil {
		return LogCorrelation{}, err
	}
	res, err := stats.Pearson(xs, ys)
	if err != nil {
		return LogCorrelation{}, err
	}
	return LogCorrelation{PearsonResult: res, Points: len(xs)}, nil
}

// carMonthLogPoints builds the pooled (log miles, log DPM) snapshots used
// by Fig. 8.
func (db *DB) carMonthLogPoints() (xs, ys []float64, err error) {
	type snap struct {
		month  time.Time
		miles  float64
		events float64
	}
	series := make(map[carKey][]snap)
	for _, m := range db.Mileage {
		if m.Vehicle == "" {
			continue
		}
		k := carKey{m.Manufacturer, m.Vehicle}
		series[k] = append(series[k], snap{month: m.Month, miles: m.Miles})
	}
	for _, e := range db.Events {
		if e.Vehicle == "" {
			continue
		}
		k := carKey{e.Manufacturer, e.Vehicle}
		month := time.Date(e.Time.Year(), e.Time.Month(), 1, 0, 0, 0, 0, time.UTC)
		series[k] = append(series[k], snap{month: month, events: 1})
	}
	keys := make([]carKey, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].mfr != keys[j].mfr {
			return keys[i].mfr < keys[j].mfr
		}
		return keys[i].car < keys[j].car
	})
	for _, k := range keys {
		ss := series[k]
		sort.SliceStable(ss, func(a, b int) bool { return ss[a].month.Before(ss[b].month) })
		var cumMiles, cumEvents float64
		lastMonth := time.Time{}
		flush := func() {
			if cumMiles > 0 && cumEvents > 0 {
				xs = append(xs, cumMiles)
				ys = append(ys, cumEvents/cumMiles)
			}
		}
		for _, s := range ss {
			if !s.month.Equal(lastMonth) && !lastMonth.IsZero() {
				flush()
			}
			cumMiles += s.miles
			cumEvents += s.events
			lastMonth = s.month
		}
		flush()
	}
	if len(xs) < 3 {
		return nil, nil, errors.New("core: too few car-month points")
	}
	lx, ly := stats.PairedDropNaN(stats.Log10All(xs), stats.Log10All(ys))
	return lx, ly, nil
}

// DPMTrendSeries is one manufacturer's Fig. 9 trace: monthly DPM against
// cumulative miles, with a log-log fit.
type DPMTrendSeries struct {
	Manufacturer schema.Manufacturer
	// CumMiles and DPM are parallel monthly series.
	CumMiles []float64
	DPM      []float64
	Fit      stats.LinReg
	// FitOK reports whether enough positive points existed to fit.
	FitOK bool
}

// DPMTrend reproduces Fig. 9.
func (db *DB) DPMTrend() ([]DPMTrendSeries, error) {
	cum, err := db.CumulativeDisengagements()
	if err != nil {
		return nil, err
	}
	var out []DPMTrendSeries
	for _, s := range cum {
		tr := DPMTrendSeries{Manufacturer: s.Manufacturer}
		var prevMiles, prevEvents float64
		for _, p := range s.Points {
			dMiles := p.Miles - prevMiles
			dEvents := p.Disengagements - prevEvents
			prevMiles, prevEvents = p.Miles, p.Disengagements
			if dMiles <= 0 {
				continue
			}
			tr.CumMiles = append(tr.CumMiles, p.Miles)
			tr.DPM = append(tr.DPM, dEvents/dMiles)
		}
		if fit, err := stats.LogLogRegression(tr.CumMiles, tr.DPM); err == nil {
			tr.Fit = fit
			tr.FitOK = true
		}
		out = append(out, tr)
	}
	return out, nil
}

// ReactionDistribution is one manufacturer's Fig. 10 box plot of driver
// reaction times.
type ReactionDistribution struct {
	Manufacturer schema.Manufacturer
	Box          stats.FiveNum
	Values       []float64
	Mean         float64
}

// ReactionTimes reproduces Fig. 10. Manufacturers without reported reaction
// times are omitted.
func (db *DB) ReactionTimes() []ReactionDistribution {
	byMfr := make(map[schema.Manufacturer][]float64)
	for _, e := range db.Events {
		if e.HasReaction() {
			byMfr[e.Manufacturer] = append(byMfr[e.Manufacturer], e.ReactionSeconds)
		}
	}
	var out []ReactionDistribution
	for _, m := range db.AnalysisManufacturers() {
		vals := byMfr[m]
		if len(vals) == 0 {
			continue
		}
		box, err := stats.BoxPlot(vals)
		if err != nil {
			continue
		}
		mean, _ := stats.Mean(vals)
		out = append(out, ReactionDistribution{Manufacturer: m, Box: box, Values: vals, Mean: mean})
	}
	return out
}

// MeanReaction returns the fleet-wide mean reaction time, excluding
// outliers above cutoff seconds (the paper treats Volkswagen's ~4 h record
// as a measurement error).
func (db *DB) MeanReaction(cutoff float64) (float64, error) {
	var vals []float64
	for _, e := range db.Events {
		if e.HasReaction() && e.ReactionSeconds < cutoff {
			vals = append(vals, e.ReactionSeconds)
		}
	}
	return stats.Mean(vals)
}

// ReactionFit is one manufacturer's Fig. 11 Weibull fit.
type ReactionFit struct {
	Manufacturer schema.Manufacturer
	Weibull      stats.Weibull
	// KS is the Kolmogorov-Smirnov distance of the fit.
	KS float64
	N  int
}

// FitReactionWeibull reproduces Fig. 11 for one manufacturer, excluding
// outliers above cutoff seconds.
func (db *DB) FitReactionWeibull(m schema.Manufacturer, cutoff float64) (ReactionFit, error) {
	var vals []float64
	for _, e := range db.Events {
		if e.Manufacturer == m && e.HasReaction() && e.ReactionSeconds < cutoff && e.ReactionSeconds > 0 {
			vals = append(vals, e.ReactionSeconds)
		}
	}
	w, err := stats.FitWeibull(vals)
	if err != nil {
		return ReactionFit{}, err
	}
	ks, err := stats.KSStatistic(vals, w)
	if err != nil {
		return ReactionFit{}, err
	}
	return ReactionFit{Manufacturer: m, Weibull: w, KS: ks, N: len(vals)}, nil
}

// PooledReactionFit fits the exponentiated Weibull to the pooled
// reaction-time sample (all manufacturers except outliers), the
// "Exponential-Weibull fit" of §V-A4.
func (db *DB) PooledReactionFit(cutoff float64) (stats.ExpWeibull, int, error) {
	var vals []float64
	for _, e := range db.Events {
		if e.HasReaction() && e.ReactionSeconds < cutoff && e.ReactionSeconds > 0 {
			vals = append(vals, e.ReactionSeconds)
		}
	}
	fit, err := stats.FitExpWeibull(vals)
	if err != nil {
		return stats.ExpWeibull{}, 0, err
	}
	return fit, len(vals), nil
}

// ReactionKS compares two manufacturers' reaction-time distributions with
// the two-sample Kolmogorov–Smirnov test (outliers above cutoff excluded).
// The paper contrasts Mercedes-Benz's long-tailed distribution with Waymo's
// concentrated one (Fig. 11); this quantifies the difference.
func (db *DB) ReactionKS(a, b schema.Manufacturer, cutoff float64) (d, p float64, err error) {
	collect := func(m schema.Manufacturer) []float64 {
		var out []float64
		for _, e := range db.Events {
			if e.Manufacturer == m && e.HasReaction() && e.ReactionSeconds < cutoff {
				out = append(out, e.ReactionSeconds)
			}
		}
		return out
	}
	return stats.KSTwoSample(collect(a), collect(b))
}

// AlertnessTrend is the Q4 result for one manufacturer: the correlation of
// driver reaction time with cumulative miles driven.
type AlertnessTrend struct {
	Manufacturer schema.Manufacturer
	stats.PearsonResult
}

// AlertnessTrends reproduces the paper's §V-A4 correlations (Waymo r=0.19,
// Mercedes-Benz r=0.11, both significant at 99%). Reaction times above
// cutoff are excluded.
func (db *DB) AlertnessTrends(cutoff float64) ([]AlertnessTrend, error) {
	// Cumulative fleet miles per manufacturer keyed by month.
	type monthMiles struct {
		month time.Time
		miles float64
	}
	byMfr := make(map[schema.Manufacturer][]monthMiles)
	for _, m := range db.Mileage {
		byMfr[m.Manufacturer] = append(byMfr[m.Manufacturer], monthMiles{m.Month, m.Miles})
	}
	cumBy := make(map[schema.Manufacturer]map[time.Time]float64)
	for m, ms := range byMfr {
		sort.SliceStable(ms, func(a, b int) bool { return ms[a].month.Before(ms[b].month) })
		cum := make(map[time.Time]float64)
		var acc float64
		for _, mm := range ms {
			acc += mm.miles
			cum[mm.month] = acc // last write per month wins: total through month
		}
		cumBy[m] = cum
	}
	var out []AlertnessTrend
	for _, m := range db.AnalysisManufacturers() {
		var xs, ys []float64
		for _, e := range db.Events {
			if e.Manufacturer != m || !e.HasReaction() || e.ReactionSeconds >= cutoff {
				continue
			}
			month := time.Date(e.Time.Year(), e.Time.Month(), 1, 0, 0, 0, 0, time.UTC)
			cm, ok := cumBy[m][month]
			if !ok {
				continue
			}
			xs = append(xs, cm)
			ys = append(ys, e.ReactionSeconds)
		}
		res, err := stats.Pearson(xs, ys)
		if err != nil {
			continue // too few reaction reports for this manufacturer
		}
		out = append(out, AlertnessTrend{Manufacturer: m, PearsonResult: res})
	}
	return out, nil
}

// SpeedSample is one Fig. 12 panel: collision speeds with an exponential
// fit.
type SpeedSample struct {
	Label  string
	Values []float64
	Fit    stats.Exponential
	KS     float64
}

// AccidentSpeeds reproduces Fig. 12: the distribution of AV, other-vehicle,
// and relative speeds across all reported accidents, with exponential fits.
func (db *DB) AccidentSpeeds() ([]SpeedSample, error) {
	var av, other, rel []float64
	for _, a := range db.Accidents {
		if a.AVSpeedMPH >= 0 {
			av = append(av, a.AVSpeedMPH)
		}
		if a.OtherSpeedMPH >= 0 {
			other = append(other, a.OtherSpeedMPH)
		}
		if r := a.RelativeSpeedMPH(); r >= 0 {
			rel = append(rel, r)
		}
	}
	var out []SpeedSample
	for _, s := range []struct {
		label string
		vals  []float64
	}{
		{"AV speed", av},
		{"Manual vehicle speed", other},
		{"Relative speed", rel},
	} {
		if len(s.vals) == 0 {
			continue
		}
		fit, err := stats.FitExponential(s.vals)
		if err != nil {
			return nil, err
		}
		ks, err := stats.KSStatistic(s.vals, fit)
		if err != nil {
			return nil, err
		}
		out = append(out, SpeedSample{Label: s.label, Values: s.vals, Fit: fit, KS: ks})
	}
	return out, nil
}

// RelativeSpeedUnder returns the fraction of accidents whose relative
// collision speed is below the threshold (paper: >80% under 10 mph).
func (db *DB) RelativeSpeedUnder(mph float64) float64 {
	var under, total float64
	for _, a := range db.Accidents {
		r := a.RelativeSpeedMPH()
		if r < 0 {
			continue
		}
		total++
		if r < mph {
			under++
		}
	}
	if total == 0 {
		return 0
	}
	return under / total
}

// MBDDistribution is one manufacturer's distribution of per-vehicle miles
// between disengagements — the replacement reliability metric the paper
// proposes in §V-C2 ("operational hours to failure" being unavailable for
// cars, miles-to-disengagement is the cross-transportation-system
// comparable).
type MBDDistribution struct {
	Manufacturer schema.Manufacturer
	Box          stats.FiveNum
	// Values holds per-vehicle miles-between-disengagements, ascending.
	Values []float64
	// CensoredVehicles counts vehicles with miles but zero disengagements
	// (their MBD is right-censored at their total mileage).
	CensoredVehicles int
}

// MilesBetweenDisengagements computes the paper's proposed per-vehicle
// metric: total autonomous miles divided by disengagement count, per
// vehicle, per manufacturer. Vehicles with zero events are reported as
// censored rather than folded into the distribution.
func (db *DB) MilesBetweenDisengagements() []MBDDistribution {
	cars := db.perCar(nil)
	byMfr := make(map[schema.Manufacturer][]float64)
	censored := make(map[schema.Manufacturer]int)
	for _, k := range sortedCarKeys(cars) {
		s := cars[k]
		if s.miles <= 0 {
			continue
		}
		if s.events == 0 {
			censored[k.mfr]++
			continue
		}
		byMfr[k.mfr] = append(byMfr[k.mfr], s.miles/float64(s.events))
	}
	var out []MBDDistribution
	for _, m := range db.AnalysisManufacturers() {
		vals := byMfr[m]
		if len(vals) == 0 {
			continue
		}
		sort.Float64s(vals)
		box, err := stats.BoxPlot(vals)
		if err != nil {
			continue
		}
		out = append(out, MBDDistribution{
			Manufacturer:     m,
			Box:              box,
			Values:           vals,
			CensoredVehicles: censored[m],
		})
	}
	return out
}

// AccidentMilesTrend is the §V-B correlation between accident counts and
// cumulative autonomous miles across the manufacturers that reported
// accidents and mileage (paper: r = 0.98, p < 0.01). The paper phrases the
// y-axis as "accidents observed per mile", but r = 0.98 is only consistent
// with raw counts against miles — per-mile rates correlate *negatively*
// with exposure in this data (Waymo: most miles, lowest rate).
func (db *DB) AccidentMilesTrend() (stats.PearsonResult, error) {
	miles := db.MilesBy()
	accBy := make(map[schema.Manufacturer]float64)
	for _, a := range db.Accidents {
		accBy[a.Manufacturer]++
	}
	var xs, ys []float64
	for _, m := range schema.AllManufacturers() {
		if accBy[m] == 0 || miles[m] <= 0 {
			continue
		}
		xs = append(xs, miles[m])
		ys = append(ys, accBy[m])
	}
	return stats.Pearson(xs, ys)
}
