package core

import (
	"bytes"
	"math"
	"testing"

	"avfda/internal/schema"
)

func TestRoadBreakdown(t *testing.T) {
	db := truthDB(t)
	risks, unknown := db.RoadBreakdown()
	if len(risks) < 5 {
		t.Fatalf("road types = %d", len(risks))
	}
	var eventShare float64
	for _, r := range risks {
		eventShare += r.EventShare
		if r.RelativeRisk <= 0 {
			t.Errorf("%s: relative risk %.2f", r.Road, r.RelativeRisk)
		}
	}
	if math.Abs(eventShare-1) > 1e-9 {
		t.Errorf("event shares sum to %.4f", eventShare)
	}
	// Synth draws event roads from the mileage mix, so relative risk ~1
	// for the major road types.
	for _, r := range risks {
		if r.Road == schema.RoadCityStreet && (r.RelativeRisk < 0.8 || r.RelativeRisk > 1.25) {
			t.Errorf("city-street relative risk %.2f, want ~1", r.RelativeRisk)
		}
	}
	if unknown < 0 {
		t.Error("negative unknown count")
	}
}

func TestWeatherBreakdown(t *testing.T) {
	db := truthDB(t)
	wx := db.WeatherBreakdown()
	if wx[schema.WeatherSunny] <= wx[schema.WeatherRaining] {
		t.Error("California weather mix inverted")
	}
	total := 0
	for _, n := range wx {
		total += n
	}
	if total != len(db.Events) {
		t.Errorf("weather counts sum to %d of %d", total, len(db.Events))
	}
}

func TestEventsFrame(t *testing.T) {
	db := truthDB(t)
	f, err := db.EventsFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != len(db.Events) {
		t.Fatalf("frame rows %d, events %d", f.NumRows(), len(db.Events))
	}
	if f.NumCols() != 11 {
		t.Errorf("frame cols = %d", f.NumCols())
	}
	// Frame round-trips through CSV.
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100000 {
		t.Errorf("CSV suspiciously small: %d bytes", buf.Len())
	}
	// Group-by through the frame agrees with the direct counts.
	groups, err := f.GroupBy("manufacturer")
	if err != nil {
		t.Fatal(err)
	}
	direct := db.EventsBy()
	for _, g := range groups {
		if g.Frame.NumRows() != direct[schema.Manufacturer(g.Key[0])] {
			t.Errorf("%s: frame %d vs direct %d", g.Key[0], g.Frame.NumRows(), direct[schema.Manufacturer(g.Key[0])])
		}
	}
}

func TestMileageFrame(t *testing.T) {
	db := truthDB(t)
	f, err := db.MileageFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != len(db.Mileage) {
		t.Fatalf("frame rows %d, mileage %d", f.NumRows(), len(db.Mileage))
	}
	miles, err := f.Floats("miles")
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, m := range miles {
		sum += m
	}
	var direct float64
	for _, m := range db.Mileage {
		direct += m.Miles
	}
	if math.Abs(sum-direct) > 1e-6 {
		t.Errorf("frame miles %.2f vs direct %.2f", sum, direct)
	}
}

func TestDPMFrameAgreesWithDirect(t *testing.T) {
	db := truthDB(t)
	f, err := db.DPMFrame()
	if err != nil {
		t.Fatal(err)
	}
	mfrs, err := f.StringsCol("manufacturer")
	if err != nil {
		t.Fatal(err)
	}
	dpms, err := f.Floats("dpm")
	if err != nil {
		t.Fatal(err)
	}
	milesBy := db.MilesBy()
	eventsBy := db.EventsBy()
	for i, m := range mfrs {
		mfr := schema.Manufacturer(m)
		if milesBy[mfr] <= 0 {
			continue
		}
		want := float64(eventsBy[mfr]) / milesBy[mfr]
		if math.Abs(dpms[i]-want) > 1e-12 {
			t.Errorf("%s: frame DPM %.6g vs direct %.6g", m, dpms[i], want)
		}
	}
	// Sorted by manufacturer name.
	for i := 1; i < len(mfrs); i++ {
		if mfrs[i] < mfrs[i-1] {
			t.Fatal("DPMFrame not sorted")
		}
	}
}

func TestUnderreportingSensitivity(t *testing.T) {
	db := truthDB(t)
	rows, err := db.UnderreportingSensitivity([]float64{0, 0.25, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// u=0 reproduces the observed rates.
	base := rows[0]
	wantDPM := float64(len(db.Events)) / 1116605.0
	if math.Abs(base.TrueDPM-wantDPM)/wantDPM > 1e-6 {
		t.Errorf("u=0 DPM %.4g, want %.4g", base.TrueDPM, wantDPM)
	}
	// Rates scale by 1/(1-u) and are monotone in u.
	if math.Abs(rows[1].TrueDPM-base.TrueDPM/0.75)/base.TrueDPM > 1e-9 {
		t.Errorf("u=0.25 scaling wrong: %g", rows[1].TrueDPM)
	}
	if !(rows[0].RelToHuman < rows[1].RelToHuman && rows[1].RelToHuman < rows[2].RelToHuman) {
		t.Error("rel-to-human not monotone in underreporting")
	}
	// Even at u=0 the fleet is ~19x worse than humans (42/1.1M vs 2e-6).
	if base.RelToHuman < 10 || base.RelToHuman > 30 {
		t.Errorf("corpus-wide rel-to-human %.1f", base.RelToHuman)
	}
	if _, err := db.UnderreportingSensitivity([]float64{1}); err == nil {
		t.Error("u=1: want error")
	}
	if _, err := db.UnderreportingSensitivity([]float64{-0.1}); err == nil {
		t.Error("u<0: want error")
	}
	empty := &DB{}
	if _, err := empty.UnderreportingSensitivity([]float64{0}); err == nil {
		t.Error("empty db: want error")
	}
}

func TestEmptyDBAnalysesDegradeGracefully(t *testing.T) {
	db := &DB{}
	if rows := db.FleetSummary(); len(rows) != 0 {
		t.Error("empty fleet summary should be empty")
	}
	if rows := db.CategoryBreakdown(); len(rows) != 0 {
		t.Error("empty category breakdown should be empty")
	}
	s := db.OverallCategoryShares()
	if s.MLDesign != 0 {
		t.Error("empty shares should be zero")
	}
	if rows := db.ModalityBreakdown(); len(rows) != 0 {
		t.Error("empty modality breakdown should be empty")
	}
	if rows := db.AccidentSummary(); len(rows) != 0 {
		t.Error("empty accident summary should be empty")
	}
	if rows, err := db.ReliabilityVsHuman(); err != nil || len(rows) != 0 {
		t.Errorf("empty reliability: %v, %d rows", err, len(rows))
	}
	if dists := db.DPMPerCar(); len(dists) != 0 {
		t.Error("empty DPM per car should be empty")
	}
	if _, err := db.PooledLogCorrelation(); err == nil {
		t.Error("empty pooled correlation should error")
	}
	if rows := db.ReactionTimes(); len(rows) != 0 {
		t.Error("empty reaction times should be empty")
	}
	if _, err := db.MeanReaction(3600); err == nil {
		t.Error("empty mean reaction should error")
	}
	if _, err := db.AccidentSpeeds(); err != nil {
		t.Errorf("empty accident speeds: %v", err)
	}
	if frac := db.RelativeSpeedUnder(10); frac != 0 {
		t.Error("empty relative speed fraction should be 0")
	}
	if _, err := db.AccidentMilesTrend(); err == nil {
		t.Error("empty accident trend should error (n<3)")
	}
	if risks, unknown := db.RoadBreakdown(); len(risks) != 0 || unknown != 0 {
		t.Error("empty road breakdown should be empty")
	}
	if agg := db.Aggregates(); agg.MilesPerDisengagement != 0 {
		t.Error("empty aggregates should be zero")
	}
	if dists := db.MilesBetweenDisengagements(); len(dists) != 0 {
		t.Error("empty MBD should be empty")
	}
	f, err := db.EventsFrame()
	if err != nil || f.NumRows() != 0 {
		t.Errorf("empty events frame: %v", err)
	}
}

func TestAccidentsFrame(t *testing.T) {
	db := truthDB(t)
	f, err := db.AccidentsFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != len(db.Accidents) {
		t.Fatalf("frame rows %d, accidents %d", f.NumRows(), len(db.Accidents))
	}
	if f.NumCols() != 10 {
		t.Errorf("frame cols = %d, want 10", f.NumCols())
	}

	// Flags are encoded 0/1 and agree with the structs row by row.
	auto, err := f.Ints("inAutonomousMode")
	if err != nil {
		t.Fatal(err)
	}
	redacted, err := f.Ints("redacted")
	if err != nil {
		t.Fatal(err)
	}
	mfr, err := f.StringsCol("manufacturer")
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range db.Accidents {
		if want := boolInt(a.InAutonomousMode); auto[i] != want {
			t.Fatalf("row %d: inAutonomousMode = %d, want %d", i, auto[i], want)
		}
		if want := boolInt(a.Redacted); redacted[i] != want {
			t.Fatalf("row %d: redacted = %d, want %d", i, redacted[i], want)
		}
		if mfr[i] != string(a.Manufacturer) {
			t.Fatalf("row %d: manufacturer %q vs %q", i, mfr[i], a.Manufacturer)
		}
	}

	// The frame round-trips through CSV like the other exports.
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty CSV")
	}

	// An empty database still yields the full schema.
	ef, err := (&DB{}).AccidentsFrame()
	if err != nil {
		t.Fatal(err)
	}
	if ef.NumRows() != 0 || ef.NumCols() != 10 {
		t.Errorf("empty frame shape = %dx%d", ef.NumRows(), ef.NumCols())
	}
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
