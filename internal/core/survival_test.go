package core

import (
	"testing"

	"avfda/internal/schema"
)

func TestSurvivalCurves(t *testing.T) {
	db := truthDB(t)
	curves, err := db.SurvivalCurves()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) < 6 {
		t.Fatalf("curves = %d", len(curves))
	}
	byMfr := make(map[schema.Manufacturer]SurvivalCurve)
	for _, c := range curves {
		byMfr[c.Manufacturer] = c
	}
	// Waymo's median miles-to-first-disengagement dwarfs the pack's.
	waymo, ok := byMfr[schema.Waymo]
	if !ok {
		t.Fatal("no Waymo curve")
	}
	bosch, ok := byMfr[schema.Bosch]
	if !ok {
		t.Fatal("no Bosch curve")
	}
	if waymo.MedianMiles > 0 && bosch.MedianMiles > 0 {
		if waymo.MedianMiles < 100*bosch.MedianMiles {
			t.Errorf("Waymo median %.1f mi vs Bosch %.2f mi — spread too small",
				waymo.MedianMiles, bosch.MedianMiles)
		}
	}
	// Survival at 0 miles is 1; curves are non-increasing.
	for _, c := range curves {
		if got := c.KM.At(0); got > 1 || got <= 0 {
			t.Errorf("%s: S(0) = %g", c.Manufacturer, got)
		}
		prev := 1.0
		for _, p := range c.KM.Points {
			if p.Survival > prev+1e-12 {
				t.Fatalf("%s: survival increased at %g", c.Manufacturer, p.Time)
			}
			prev = p.Survival
		}
		// Censored vehicles only where the fleet has event-free cars.
		if c.KM.N <= 0 {
			t.Errorf("%s: empty curve", c.Manufacturer)
		}
	}
	// Waymo has censored (event-free) vehicles.
	if waymo.KM.Censored == 0 {
		t.Error("Waymo should have censored vehicles")
	}
}

func TestSurvivalLogRankSeparatesFleets(t *testing.T) {
	db := truthDB(t)
	// Waymo vs Bosch miles-to-first-disengagement: wildly different.
	chi2, p, err := db.SurvivalLogRank(schema.Waymo, schema.Bosch)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Errorf("Waymo-vs-Bosch log-rank p = %g (chi2 %g), want significant", p, chi2)
	}
	// A fleet against itself cannot be distinguished.
	_, p, err = db.SurvivalLogRank(schema.Waymo, schema.Waymo)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.99 {
		t.Errorf("self log-rank p = %g, want ~1", p)
	}
}

func TestSurvivalEmptyDB(t *testing.T) {
	db := &DB{}
	if _, err := db.SurvivalCurves(); err == nil {
		t.Error("empty DB: want error")
	}
}
