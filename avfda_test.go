package avfda

import (
	"strings"
	"testing"
)

// sharedStudy caches one default study for the facade tests.
var sharedStudy *Study

func study(t *testing.T) *Study {
	t.Helper()
	if sharedStudy == nil {
		s, err := NewStudy(Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		sharedStudy = s
	}
	return sharedStudy
}

func TestStudySummary(t *testing.T) {
	s := study(t)
	out := s.Summary()
	for _, want := range []string{"disengagements", "tag accuracy", "ML/Design"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestStudyAllArtifacts(t *testing.T) {
	s := study(t)
	checks := []struct {
		name string
		text string
		err  error
	}{
		{"TableI", s.TableI(), nil},
		{"TableIII", s.TableIII(), nil},
		{"TableIV", s.TableIV(), nil},
		{"TableV", s.TableV(), nil},
		{"TableVI", s.TableVI(), nil},
		{"Figure4", s.Figure4(), nil},
		{"Figure6", s.Figure6(), nil},
		{"Figure7", s.Figure7(), nil},
		{"RoadContext", s.RoadContext(), nil},
		{"WeatherContext", s.WeatherContext(), nil},
		{"MilesBetween", s.MilesBetween(), nil},
	}
	for _, c := range checks {
		if c.text == "" {
			t.Errorf("%s empty", c.name)
		}
	}
	for name, fn := range map[string]func() (string, error){
		"TableVII": s.TableVII, "TableVIII": s.TableVIII,
		"Figure5": s.Figure5, "Figure8": s.Figure8, "Figure9": s.Figure9,
		"Figure10": s.Figure10, "Figure11": s.Figure11, "Figure12": s.Figure12,
		"CaseStudies": s.CaseStudies, "MissionValidation": s.MissionValidation,
		"Survival": s.Survival,
	} {
		out, err := fn()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if out == "" {
			t.Errorf("%s empty", name)
		}
	}
}

func TestStudyDBAccess(t *testing.T) {
	s := study(t)
	if s.DB() == nil || len(s.DB().Events) == 0 {
		t.Fatal("DB inaccessible")
	}
	if s.Result() == nil || s.Result().ParseReport == nil {
		t.Fatal("Result inaccessible")
	}
}

func TestPaperTotals(t *testing.T) {
	miles, dis, acc, cars := PaperTotals()
	if miles != 1116605 || dis != 5328 || acc != 42 || cars != 144 {
		t.Errorf("PaperTotals = %v %v %v %v", miles, dis, acc, cars)
	}
}

func TestClassifyCause(t *testing.T) {
	tag, cat, err := ClassifyCause("Takeover-Request - watchdog error")
	if err != nil {
		t.Fatal(err)
	}
	if tag != "Hang/Crash" || cat != "System" {
		t.Errorf("ClassifyCause = %s/%s", tag, cat)
	}
	tag, cat, err = ClassifyCause("no recognizable content here")
	if err != nil {
		t.Fatal(err)
	}
	if tag != "Unknown-T" || cat != "Unknown-C" {
		t.Errorf("unknown cause = %s/%s", tag, cat)
	}
}

func TestMissionModelFacade(t *testing.T) {
	s := study(t)
	m, err := s.MissionModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.TagRates) == 0 || m.TripMiles != 10 {
		t.Errorf("mission model = %+v", m)
	}
}

func TestNewStudyFromJSON(t *testing.T) {
	// Round trip: marshal a tiny corpus, reload it through the facade.
	blob := []byte(`{
		"fleets": [{"manufacturer": "Nissan", "reportYear": 1, "cars": 1}],
		"mileage": [{
			"manufacturer": "Nissan", "vehicle": "n1", "reportYear": 1,
			"month": "2015-03-01T00:00:00Z", "miles": 150
		}],
		"disengagements": [{
			"manufacturer": "Nissan", "vehicle": "n1", "reportYear": 1,
			"time": "2015-03-14T10:00:00Z",
			"cause": "Takeover-Request - watchdog error",
			"modality": 2, "reactionSeconds": 0.7
		}],
		"accidents": null
	}`)
	s, err := NewStudyFromJSON(blob, Options{CleanOCR: true, NoDictionaryExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.DB().Events) != 1 {
		t.Fatalf("events = %d", len(s.DB().Events))
	}
	if s.DB().Events[0].Tag.String() != "Hang/Crash" {
		t.Errorf("tag = %s", s.DB().Events[0].Tag)
	}
	// Bad JSON and invalid corpora surface as errors.
	if _, err := NewStudyFromJSON([]byte("{"), Options{}); err == nil {
		t.Error("bad JSON: want error")
	}
	invalid := []byte(`{"mileage": [{"manufacturer": "Atlantis", "month": "2015-03-01T00:00:00Z", "miles": 1}]}`)
	if _, err := NewStudyFromJSON(invalid, Options{}); err == nil {
		t.Error("invalid corpus: want error")
	}
}

func TestCleanOCROption(t *testing.T) {
	s, err := NewStudy(Options{Seed: 2, CleanOCR: true, NoDictionaryExpansion: true})
	if err != nil {
		t.Fatal(err)
	}
	_, dis, _, _ := PaperTotals()
	if len(s.DB().Events) != dis {
		t.Errorf("clean study recovered %d of %d events", len(s.DB().Events), dis)
	}
	if s.Result().ParseReport.DefectRate() != 0 {
		t.Error("clean study should have zero defects")
	}
}
