package avfda

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md §4 maps IDs to modules) and reports the headline
// measured quantities as custom benchmark metrics, so `go test -bench=.`
// output doubles as the reproduction record behind EXPERIMENTS.md.
//
// Shared setup (the end-to-end study) is built once per process; each
// benchmark measures only its artifact's computation.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"avfda/internal/calib"
	"avfda/internal/core"
	"avfda/internal/mission"
	"avfda/internal/nlp"
	"avfda/internal/ocr"
	"avfda/internal/parse"
	"avfda/internal/pipeline"
	"avfda/internal/reliability"
	"avfda/internal/report"
	"avfda/internal/scandoc"
	"avfda/internal/schema"
	"avfda/internal/stats"
	"avfda/internal/synth"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
	benchErr   error
)

func benchDB(b *testing.B) *core.DB {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy, benchErr = NewStudy(Options{Seed: 1})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStudy.DB()
}

// --- Tables ---

func BenchmarkTableI(b *testing.B) {
	db := benchDB(b)
	var rows []core.FleetRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = db.FleetSummary()
	}
	b.StopTimer()
	var miles float64
	var events int
	for _, r := range rows {
		miles += r.Miles
		events += r.Disengagements
	}
	b.ReportMetric(miles, "miles")
	b.ReportMetric(float64(events), "disengagements")
	b.ReportMetric(calib.TotalMiles, "paper-miles")
}

func BenchmarkTableII(b *testing.B) {
	cls, err := nlp.NewClassifier(nlp.SeedDictionary(), nlp.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	logs := []string{
		"Software module froze. As a result driver safely disengaged and resumed manual control.",
		"The AV didn't see the lead vehicle, driver safely disengaged and resumed manual control.",
		"Disengage for a recklessly behaving road user",
		"Takeover-Request - watchdog error",
	}
	var correct int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		correct = 0
		for _, l := range logs {
			if cls.Classify(l).Tag.String() != "Unknown-T" {
				correct++
			}
		}
	}
	b.ReportMetric(float64(correct)/float64(len(logs)), "tagged-frac")
}

func BenchmarkTableIII(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = report.TableIII()
	}
	b.ReportMetric(float64(len(out)), "bytes")
}

func BenchmarkTableIV(b *testing.B) {
	db := benchDB(b)
	var shares core.CategoryShares
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.CategoryBreakdown()
		shares = db.OverallCategoryShares()
	}
	b.ReportMetric(100*shares.MLDesign, "ml-pct")
	b.ReportMetric(100*calib.MLDesignShare, "paper-ml-pct")
}

func BenchmarkTableV(b *testing.B) {
	db := benchDB(b)
	var rows []core.ModalityRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = db.ModalityBreakdown()
	}
	b.StopTimer()
	var auto, n float64
	for _, r := range rows {
		auto += r.AutomaticPct
		n++
	}
	b.ReportMetric(auto/n, "mean-auto-pct")
	b.ReportMetric(100*calib.MeanAutomaticShare, "paper-auto-pct")
}

func BenchmarkTableVI(b *testing.B) {
	db := benchDB(b)
	var rows []core.AccidentRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = db.AccidentSummary()
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Manufacturer == schema.Waymo {
			b.ReportMetric(r.DPA, "waymo-dpa")
			b.ReportMetric(calib.TableVI[schema.Waymo].DPA, "paper-waymo-dpa")
		}
	}
}

func BenchmarkTableVII(b *testing.B) {
	db := benchDB(b)
	var rows []core.ReliabilityRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = db.ReliabilityVsHuman()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		switch r.Manufacturer {
		case schema.Waymo:
			b.ReportMetric(r.RelToHuman, "waymo-vs-human")
		case schema.GMCruise:
			b.ReportMetric(r.RelToHuman, "gmcruise-vs-human")
		}
	}
}

func BenchmarkTableVIII(b *testing.B) {
	db := benchDB(b)
	var rows []core.CrossDomainRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = db.CrossDomainTable()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		if r.Manufacturer == schema.Waymo {
			b.ReportMetric(r.VsAirline, "waymo-vs-airline")
			b.ReportMetric(calib.TableVIII[schema.Waymo].VsAirline, "paper-vs-airline")
		}
	}
}

// --- Figures ---

func BenchmarkFigure4(b *testing.B) {
	db := benchDB(b)
	var dists []core.DPMDistribution
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dists = db.DPMPerCar()
	}
	b.StopTimer()
	for _, d := range dists {
		if d.Manufacturer == schema.Waymo {
			b.ReportMetric(d.Box.Median, "waymo-median-dpm")
			b.ReportMetric(calib.TableVII[schema.Waymo].MedianDPM, "paper-median-dpm")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	db := benchDB(b)
	var series []core.CumulativeSeries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		series, err = db.CumulativeDisengagements()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	var r2Sum float64
	var n int
	for _, s := range series {
		if len(s.Points) >= 10 {
			r2Sum += s.Fit.R2
			n++
		}
	}
	if n > 0 {
		b.ReportMetric(r2Sum/float64(n), "mean-R2")
	}
}

func BenchmarkFigure6(b *testing.B) {
	db := benchDB(b)
	var rows []core.TagFractions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = db.TagBreakdown()
	}
	b.ReportMetric(float64(len(rows)), "manufacturers")
}

func BenchmarkFigure7(b *testing.B) {
	db := benchDB(b)
	var rows []core.YearDistribution
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = db.DPMByYear()
	}
	b.StopTimer()
	waymo := map[int]float64{}
	for _, r := range rows {
		if r.Manufacturer == schema.Waymo {
			waymo[r.Year] = r.Box.Median
		}
	}
	if waymo[2016] > 0 {
		b.ReportMetric(waymo[2014]/waymo[2016], "waymo-2014-2016-drop")
	}
}

func BenchmarkFigure8(b *testing.B) {
	db := benchDB(b)
	var lc core.LogCorrelation
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		lc, err = db.PooledLogCorrelation()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lc.R, "pearson-r")
	b.ReportMetric(calib.Fig8PearsonR, "paper-r")
}

func BenchmarkFigure9(b *testing.B) {
	db := benchDB(b)
	var series []core.DPMTrendSeries
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		series, err = db.DPMTrend()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	neg := 0
	for _, s := range series {
		if s.FitOK && s.Fit.Slope < 0 {
			neg++
		}
	}
	b.ReportMetric(float64(neg), "improving-manufacturers")
}

func BenchmarkFigure10(b *testing.B) {
	db := benchDB(b)
	var mean float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = db.ReactionTimes()
		var err error
		mean, err = db.MeanReaction(3600)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(mean, "mean-reaction-s")
	b.ReportMetric(calib.MeanReactionSeconds, "paper-mean-s")
}

func BenchmarkFigure11(b *testing.B) {
	db := benchDB(b)
	var fit core.ReactionFit
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		fit, err = db.FitReactionWeibull(schema.Waymo, 3600)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fit.Weibull.K, "waymo-shape")
	b.ReportMetric(fit.KS, "ks-distance")
}

func BenchmarkFigure12(b *testing.B) {
	db := benchDB(b)
	var under float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.AccidentSpeeds(); err != nil {
			b.Fatal(err)
		}
		under = db.RelativeSpeedUnder(10)
	}
	b.ReportMetric(100*under, "rel-under-10mph-pct")
	b.ReportMetric(100*calib.RelSpeedUnder10Pct, "paper-pct")
}

// --- Section-level results ---

func BenchmarkAlertness(b *testing.B) {
	db := benchDB(b)
	var trends []core.AlertnessTrend
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		trends, err = db.AlertnessTrends(3600)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, tr := range trends {
		if tr.Manufacturer == schema.Waymo {
			b.ReportMetric(tr.R, "waymo-r")
			b.ReportMetric(calib.ReactionCorr[schema.Waymo].R, "paper-waymo-r")
		}
	}
}

func BenchmarkAccidentTrend(b *testing.B) {
	db := benchDB(b)
	var res stats.PearsonResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = db.AccidentMilesTrend()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.R, "pearson-r")
	b.ReportMetric(calib.AccidentAPMCorr, "paper-r")
}

func BenchmarkKalraPaddock(b *testing.B) {
	var conf float64
	for i := 0; i < b.N; i++ {
		var err error
		conf, err = reliability.EstimateConfidence(25, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := reliability.MilesToDemonstrate(calib.HumanAPM, 0.95); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(conf, "waymo-confidence")
}

// --- Pipeline-stage benches ---

func BenchmarkPipelineEndToEnd(b *testing.B) {
	cfg := pipeline.DefaultConfig()
	var res *pipeline.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Synth.Seed = int64(i + 1)
		var err error
		res, err = pipeline.Run(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Accuracy.TagAccuracy(), "tag-accuracy-pct")
}

func BenchmarkSynthGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(synth.Config{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineScale measures end-to-end throughput on corpora scaled
// to multiples of the calibrated fleet (Scale x cars/miles/events), both
// sequential (Workers=1) and parallel (Workers=GOMAXPROCS); the seq/par
// ratio at each scale is the pipeline's parallel speedup.
func BenchmarkPipelineScale(b *testing.B) {
	modes := []struct {
		name    string
		workers int
	}{
		{"seq", 1},
		{fmt.Sprintf("par-%d", runtime.GOMAXPROCS(0)), 0},
	}
	for _, scale := range []int{1, 2, 4} {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%dx-%s", scale, mode.name), func(b *testing.B) {
				cfg := pipeline.DefaultConfig()
				cfg.Synth.Scale = scale
				cfg.Workers = mode.workers
				var events int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cfg.Synth.Seed = int64(i + 1)
					res, err := pipeline.Run(context.Background(), cfg)
					if err != nil {
						b.Fatal(err)
					}
					events = len(res.DB.Events)
				}
				b.ReportMetric(float64(events), "events")
			})
		}
	}
}

// BenchmarkParseConcurrent measures Stage II parsing throughput at 1 and
// GOMAXPROCS workers over the default decoded document set.
func BenchmarkParseConcurrent(b *testing.B) {
	truth, err := synth.Generate(synth.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	docs := scandoc.Render(&truth.Corpus)
	engine, err := ocr.NewEngine(ocr.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	decoded, err := engine.DecodeAllConcurrent(context.Background(), docs, 0)
	if err != nil {
		b.Fatal(err)
	}
	inputs := make([]parse.Input, 0, len(decoded))
	for _, d := range decoded {
		inputs = append(inputs, parse.Input{DocID: d.DocID, Lines: d.Lines})
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var rows int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err := parse.ParseConcurrent(inputs, workers)
				if err != nil {
					b.Fatal(err)
				}
				rows = rep.RowsParsed
			}
			b.ReportMetric(float64(rows), "rows")
		})
	}
}

// BenchmarkClassifyAll measures Stage III classification throughput over
// the full synthetic cause corpus at 1 and GOMAXPROCS workers.
func BenchmarkClassifyAll(b *testing.B) {
	truth, err := synth.Generate(synth.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	causes := make([]string, len(truth.Corpus.Disengagements))
	for i, d := range truth.Corpus.Disengagements {
		causes[i] = d.Cause
	}
	cls, err := nlp.NewClassifier(nlp.SeedDictionary(), nlp.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var tagged int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tagged = 0
				for _, r := range cls.ClassifyAllConcurrent(causes, workers) {
					if r.Score > 0 {
						tagged++
					}
				}
			}
			b.ReportMetric(float64(tagged), "tagged")
		})
	}
}

// BenchmarkSurvival regenerates the Kaplan-Meier analysis.
func BenchmarkSurvival(b *testing.B) {
	db := benchDB(b)
	var curves []core.SurvivalCurve
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		curves, err = db.SurvivalCurves()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, c := range curves {
		if c.Manufacturer == schema.Waymo {
			b.ReportMetric(c.MedianMiles, "waymo-median-miles")
		}
	}
}

// BenchmarkRoadContext regenerates the road-type conditioning.
func BenchmarkRoadContext(b *testing.B) {
	db := benchDB(b)
	var risks []core.RoadRisk
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		risks, _ = db.RoadBreakdown()
	}
	b.ReportMetric(float64(len(risks)), "road-types")
}

func BenchmarkOCRDecode(b *testing.B) {
	truth, err := synth.Generate(synth.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	docs := scandoc.Render(&truth.Corpus)
	engine, err := ocr.NewEngine(ocr.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	var lines int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines = 0
		for _, r := range engine.DecodeAll(docs) {
			lines += len(r.Lines)
		}
	}
	b.ReportMetric(float64(lines), "lines")
}

func BenchmarkClassifier(b *testing.B) {
	cls, err := nlp.NewClassifier(nlp.SeedDictionary(), nlp.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	causes := []string{
		"Software module froze during merge",
		"LIDAR failed to localize in time",
		"Disengage for a recklessly behaving road user",
		"Incorrect behavior prediction at crosswalk",
		"Planned test event recorded",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cls.Classify(causes[i%len(causes)])
	}
}

// BenchmarkMilesBetweenDisengagements regenerates the paper's proposed
// §V-C2 replacement metric.
func BenchmarkMilesBetweenDisengagements(b *testing.B) {
	db := benchDB(b)
	var dists []core.MBDDistribution
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dists = db.MilesBetweenDisengagements()
	}
	b.StopTimer()
	for _, d := range dists {
		if d.Manufacturer == schema.Waymo {
			b.ReportMetric(d.Box.Median, "waymo-median-mbd")
		}
	}
}

// BenchmarkMissionModel fits and runs the stochastic fault-injection model
// (the paper's future-work direction) and reports how closely the
// simulated DPM tracks the field rate.
func BenchmarkMissionModel(b *testing.B) {
	db := benchDB(b)
	model, err := mission.Fit(db, calib.MedianTripMiles)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var st mission.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, err = mission.Campaign(model, 50000, rng, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.DPM(), "sim-dpm")
	b.ReportMetric(5328.0/1116605.0, "field-dpm")
	b.ReportMetric(st.DPA(), "sim-dpa")
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationNoStemming measures classifier tag accuracy with Porter
// stemming disabled: dictionary voting degrades on inflected causes.
func BenchmarkAblationNoStemming(b *testing.B) {
	for _, stem := range []struct {
		name string
		on   bool
	}{{"stem", true}, {"nostem", false}} {
		b.Run(stem.name, func(b *testing.B) {
			truth, err := synth.Generate(synth.Config{Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			opts := nlp.DefaultOptions()
			opts.Stem = stem.on
			cls, err := nlp.NewClassifier(nlp.SeedDictionary(), opts)
			if err != nil {
				b.Fatal(err)
			}
			var correct, total int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				correct, total = 0, 0
				for j, d := range truth.Corpus.Disengagements {
					if cls.Classify(d.Cause).Tag == truth.Tags[j] {
						correct++
					}
					total++
				}
			}
			b.ReportMetric(100*float64(correct)/float64(total), "tag-accuracy-pct")
		})
	}
}

// BenchmarkAblationOCRNoise sweeps the OCR substitution rate and reports
// the end-to-end parse-defect rate and tag accuracy at each point.
func BenchmarkAblationOCRNoise(b *testing.B) {
	for _, noise := range []struct {
		name string
		rate float64
	}{
		{"0pct", 0}, {"0.2pct", 0.002}, {"1pct", 0.01}, {"3pct", 0.03},
	} {
		b.Run(noise.name, func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			cfg.OCR.SubstitutionRate = noise.rate
			cfg.OCR.SeparatorDropRate = noise.rate
			var res *pipeline.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = pipeline.Run(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.ParseReport.DefectRate(), "defect-pct")
			b.ReportMetric(100*res.Accuracy.TagAccuracy(), "tag-accuracy-pct")
			b.ReportMetric(float64(res.OCR.ManualPages), "manual-pages")
		})
	}
}

// BenchmarkAblationExpansion compares the corpus-mining dictionary
// expansion against the seed dictionary alone, under elevated OCR noise
// (mined phrases come from corrupted text, so expansion could help or
// hurt; this measures which).
func BenchmarkAblationExpansion(b *testing.B) {
	for _, mode := range []struct {
		name   string
		expand bool
	}{{"expand", true}, {"seed-only", false}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := pipeline.DefaultConfig()
			cfg.OCR.SubstitutionRate = 0.01
			cfg.ExpandDictionary = mode.expand
			var res *pipeline.Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = pipeline.Run(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Accuracy.TagAccuracy(), "tag-accuracy-pct")
			b.ReportMetric(float64(res.DictionarySize), "dictionary-phrases")
		})
	}
}

// BenchmarkAblationDictionarySize measures tag recovery as the seed
// dictionary is truncated to n phrases per tag.
func BenchmarkAblationDictionarySize(b *testing.B) {
	truth, err := synth.Generate(synth.Config{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, size := range []int{1, 2, 4, 16} {
		b.Run(fmt.Sprintf("%d-phrases", size), func(b *testing.B) {
			dict := nlp.SeedDictionary().Truncate(size)
			cls, err := nlp.NewClassifier(dict, nlp.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			var correct int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				correct = 0
				for j, d := range truth.Corpus.Disengagements {
					if cls.Classify(d.Cause).Tag == truth.Tags[j] {
						correct++
					}
				}
			}
			b.ReportMetric(100*float64(correct)/float64(len(truth.Tags)), "tag-accuracy-pct")
			b.ReportMetric(float64(dict.Size()), "phrases")
		})
	}
}

// BenchmarkAblationVotingTieBreak compares the priority tie-break against a
// naive first-match policy. Clean single-fault causes rarely tie, so the
// ablation measures (a) accuracy on the synthetic corpus and (b) the
// disagreement rate between the two policies on composite causes that mix
// two fault classes in one log line — the ambiguous texts the tie-break
// exists for.
func BenchmarkAblationVotingTieBreak(b *testing.B) {
	truth, err := synth.Generate(synth.Config{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	// Composite causes: pair each cause with the next one from a
	// different manufacturer (deterministic, no RNG in benches).
	var composites []string
	for i := 0; i+37 < len(truth.Corpus.Disengagements) && len(composites) < 500; i += 11 {
		a := truth.Corpus.Disengagements[i].Cause
		c := truth.Corpus.Disengagements[i+37].Cause
		composites = append(composites, a+" and "+c)
	}
	opts := nlp.DefaultOptions()
	opts.TieBreak = nlp.TieBreakPriority
	prio, err := nlp.NewClassifier(nlp.SeedDictionary(), opts)
	if err != nil {
		b.Fatal(err)
	}
	opts.TieBreak = nlp.TieBreakFirstMatch
	first, err := nlp.NewClassifier(nlp.SeedDictionary(), opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, tb := range []struct {
		name string
		cls  *nlp.Classifier
	}{
		{"priority", prio},
		{"first-match", first},
	} {
		b.Run(tb.name, func(b *testing.B) {
			var correct, disagree int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				correct = 0
				for j, d := range truth.Corpus.Disengagements {
					if tb.cls.Classify(d.Cause).Tag == truth.Tags[j] {
						correct++
					}
				}
				disagree = 0
				for _, c := range composites {
					if prio.Classify(c).Tag != first.Classify(c).Tag {
						disagree++
					}
				}
			}
			b.ReportMetric(100*float64(correct)/float64(len(truth.Tags)), "tag-accuracy-pct")
			b.ReportMetric(100*float64(disagree)/float64(len(composites)), "composite-disagree-pct")
		})
	}
}
