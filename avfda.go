// Package avfda is an open-source reproduction of "Hands Off the Wheel in
// Autonomous Vehicles? A Systems Perspective on over a Million Miles of
// Field Data" (Banerjee et al., DSN 2018): a toolkit for analyzing
// autonomous-vehicle disengagement and accident field data.
//
// The package exposes the paper's end-to-end workflow:
//
//	study, err := avfda.NewStudy(avfda.Options{Seed: 1})
//	fmt.Print(study.TableVII())   // AV reliability vs human drivers
//	fmt.Print(study.Figure8())    // DPM-vs-miles correlation
//
// A Study runs Stage I–IV of the paper's pipeline — synthetic DMV corpus
// generation (calibrated to every aggregate the paper publishes), scanned-
// document rendering, OCR with realistic noise and manual fallback,
// vendor-format parsing and normalization, NLP fault tagging over an
// STPA-derived ontology, and the statistical analyses behind every table
// and figure in the paper's evaluation.
//
// Deeper access (custom corpora, individual stages, raw statistics) is
// available through the pipeline entry points below and, for code living
// in this module, the internal packages documented in DESIGN.md.
package avfda

import (
	"context"
	"encoding/json"
	"fmt"

	"avfda/internal/calib"
	"avfda/internal/core"
	"avfda/internal/mission"
	"avfda/internal/nlp"
	"avfda/internal/ocr"
	"avfda/internal/pipeline"
	"avfda/internal/report"
	"avfda/internal/schema"
	"avfda/internal/stpa"
	"avfda/internal/synth"
)

// Options configures a Study.
type Options struct {
	// Seed drives corpus generation and OCR noise; equal seeds reproduce
	// identical studies. Zero means seed 1.
	Seed int64
	// CleanOCR disables digitization noise (useful for exact-count
	// verification; the default models a realistic scanned corpus).
	CleanOCR bool
	// NoDictionaryExpansion restricts the NLP stage to the hand-verified
	// seed dictionary.
	NoDictionaryExpansion bool
}

// Study is a completed end-to-end run over the two DMV data releases.
type Study struct {
	res *pipeline.Result
}

// NewStudy generates the calibrated corpus and runs the full pipeline. It
// is equivalent to NewStudyContext with a background context.
func NewStudy(opts Options) (*Study, error) {
	return NewStudyContext(context.Background(), opts)
}

// NewStudyContext is NewStudy under a caller-supplied context: cancelling
// ctx aborts the pipeline between stages and inside the OCR fan-out, and
// the returned error wraps ctx.Err().
func NewStudyContext(ctx context.Context, opts Options) (*Study, error) {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	cfg := pipeline.DefaultConfig()
	cfg.Synth = synth.Config{Seed: seed}
	cfg.OCR.Seed = seed
	if opts.CleanOCR {
		clean := ocr.Clean()
		clean.Seed = seed
		cfg.OCR = clean
	}
	cfg.ExpandDictionary = !opts.NoDictionaryExpansion
	res, err := pipeline.Run(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("avfda: %w", err)
	}
	return &Study{res: res}, nil
}

// NewStudyFromJSON runs Stages II-IV of the pipeline over a caller-provided
// normalized corpus serialized as JSON (the format written by `avgen` into
// truth.json's "corpus" field, i.e. the JSON encoding of the corpus schema:
// fleets, mileage, disengagements, accidents). Use this entry point to
// analyze real filings you have transcribed yourself. The corpus is
// validated (study window, known manufacturers, non-negative miles) before
// analysis; ground-truth accuracy metrics are unavailable for external data.
// It is equivalent to NewStudyFromJSONContext with a background context.
func NewStudyFromJSON(data []byte, opts Options) (*Study, error) {
	return NewStudyFromJSONContext(context.Background(), data, opts)
}

// NewStudyFromJSONContext is NewStudyFromJSON under a caller-supplied
// context, with the same cancellation semantics as NewStudyContext.
func NewStudyFromJSONContext(ctx context.Context, data []byte, opts Options) (*Study, error) {
	var corpus schema.Corpus
	if err := json.Unmarshal(data, &corpus); err != nil {
		return nil, fmt.Errorf("avfda: decode corpus: %w", err)
	}
	if err := corpus.Validate(); err != nil {
		return nil, fmt.Errorf("avfda: %w", err)
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	cfg := pipeline.DefaultConfig()
	cfg.OCR.Seed = seed
	if opts.CleanOCR {
		clean := ocr.Clean()
		clean.Seed = seed
		cfg.OCR = clean
	}
	cfg.ExpandDictionary = !opts.NoDictionaryExpansion
	res, err := pipeline.RunOnCorpus(ctx, cfg, &corpus)
	if err != nil {
		return nil, fmt.Errorf("avfda: %w", err)
	}
	return &Study{res: res}, nil
}

// DB returns the consolidated failure database for custom analyses.
func (s *Study) DB() *core.DB { return s.res.DB }

// Result exposes the pipeline run with per-stage diagnostics.
func (s *Study) Result() *pipeline.Result { return s.res }

// Summary reports the headline counts and the pipeline's recovery quality.
func (s *Study) Summary() string {
	agg := s.res.DB.Aggregates()
	shares := s.res.DB.OverallCategoryShares()
	return fmt.Sprintf(
		"corpus: %d disengagements, %d accidents, %.0f autonomous miles\n"+
			"pipeline: %.1f%% rows recovered, tag accuracy %.1f%%, %d manual pages\n"+
			"headline: ML/Design faults %.1f%% of disengagements (paper: 64%%)\n"+
			"aggregates: %.1f miles/disengagement, %.1f disengagements/accident\n",
		len(s.res.DB.Events), len(s.res.DB.Accidents), totalMiles(s.res.DB),
		100*(1-s.res.ParseReport.DefectRate()), 100*s.res.Accuracy.TagAccuracy(),
		s.res.OCR.ManualPages,
		100*shares.MLDesign,
		agg.MilesPerDisengagement, agg.DisengagementsPerAccident)
}

func totalMiles(db *core.DB) float64 {
	var total float64
	for _, m := range db.Mileage {
		total += m.Miles
	}
	return total
}

// TableI renders the fleet summary (paper Table I).
func (s *Study) TableI() string { return report.TableI(s.res.DB) }

// TableIII renders the fault-tag ontology (paper Table III).
func (s *Study) TableIII() string { return report.TableIII() }

// TableIV renders the root-cause category breakdown (paper Table IV).
func (s *Study) TableIV() string { return report.TableIV(s.res.DB) }

// TableV renders the modality breakdown (paper Table V).
func (s *Study) TableV() string { return report.TableV(s.res.DB) }

// TableVI renders the accident summary (paper Table VI).
func (s *Study) TableVI() string { return report.TableVI(s.res.DB) }

// TableVII renders AV-vs-human reliability (paper Table VII).
func (s *Study) TableVII() (string, error) { return report.TableVII(s.res.DB) }

// TableVIII renders the cross-domain comparison (paper Table VIII).
func (s *Study) TableVIII() (string, error) { return report.TableVIII(s.res.DB) }

// Figure4 renders the per-car DPM distributions.
func (s *Study) Figure4() string { return report.Figure4(s.res.DB) }

// Figure5 renders cumulative disengagements vs miles.
func (s *Study) Figure5() (string, error) { return report.Figure5(s.res.DB) }

// Figure6 renders the fault-tag fractions.
func (s *Study) Figure6() string { return report.Figure6(s.res.DB) }

// Figure7 renders the year-by-year DPM evolution.
func (s *Study) Figure7() string { return report.Figure7(s.res.DB) }

// Figure8 renders the pooled log-log DPM correlation.
func (s *Study) Figure8() (string, error) { return report.Figure8(s.res.DB) }

// Figure9 renders per-manufacturer DPM trends.
func (s *Study) Figure9() (string, error) { return report.Figure9(s.res.DB) }

// Figure10 renders the reaction-time distributions.
func (s *Study) Figure10() (string, error) { return report.Figure10(s.res.DB) }

// Figure11 renders the Weibull reaction-time fits.
func (s *Study) Figure11() (string, error) { return report.Figure11(s.res.DB) }

// Figure12 renders the accident-speed distributions.
func (s *Study) Figure12() (string, error) { return report.Figure12(s.res.DB) }

// RoadContext renders the road-type risk conditioning (§VI).
func (s *Study) RoadContext() string { return report.RoadContext(s.res.DB) }

// WeatherContext renders the weather breakdown.
func (s *Study) WeatherContext() string { return report.WeatherContext(s.res.DB) }

// MilesBetween renders the paper's proposed §V-C2 per-vehicle metric.
func (s *Study) MilesBetween() string { return report.MilesBetween(s.res.DB) }

// MissionValidation fits and validates the fault-injection mission model
// against the field rates, with counterfactual sweeps.
func (s *Study) MissionValidation() (string, error) {
	return report.MissionValidation(s.res.DB, 200000, 1)
}

// Survival renders the Kaplan–Meier miles-to-first-disengagement analysis.
func (s *Study) Survival() (string, error) {
	return report.Survival(s.res.DB)
}

// CaseStudies runs the paper's §II accident scenarios through the STPA
// control-structure analysis and renders the causal read-outs.
func (s *Study) CaseStudies() (string, error) {
	structure := stpa.NewADSStructure()
	if err := structure.Validate(); err != nil {
		return "", fmt.Errorf("avfda: %w", err)
	}
	var out string
	for _, sc := range []stpa.Scenario{stpa.CaseStudyI(), stpa.CaseStudyII()} {
		a, err := structure.Analyze(sc)
		if err != nil {
			return "", fmt.Errorf("avfda: %w", err)
		}
		out += a.Render() + "\n"
	}
	return out, nil
}

// MissionModel fits the stochastic fault-injection model (the paper's
// proposed future-work direction) to this study's failure database, using
// the median US trip length as the mission.
func (s *Study) MissionModel() (mission.Model, error) {
	return mission.Fit(s.res.DB, calib.MedianTripMiles)
}

// Manufacturer re-exports the schema identifier type for API consumers.
type Manufacturer = schema.Manufacturer

// PaperTotals returns the headline constants the corpus is calibrated to.
func PaperTotals() (miles float64, disengagements, accidents, vehicles int) {
	return calib.TotalMiles, calib.TotalDisengagements, calib.TotalAccidents, calib.TotalAVs
}

// ClassifyCause runs the paper's NLP stage on a single free-text
// disengagement cause, returning the fault tag and failure category names.
func ClassifyCause(cause string) (tag, category string, err error) {
	cls, err := nlp.NewClassifier(nlp.SeedDictionary(), nlp.DefaultOptions())
	if err != nil {
		return "", "", fmt.Errorf("avfda: %w", err)
	}
	res := cls.Classify(cause)
	return res.Tag.String(), res.Category.String(), nil
}
