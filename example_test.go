package avfda_test

import (
	"fmt"

	"avfda"
)

// ExampleClassifyCause runs the paper's NLP stage over a raw disengagement
// log line.
func ExampleClassifyCause() {
	tag, category, err := avfda.ClassifyCause(
		"Takeover-Request - watchdog error")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s (%s)\n", tag, category)
	// Output: Hang/Crash (System)
}

// ExamplePaperTotals shows the headline constants the synthetic corpus is
// calibrated to.
func ExamplePaperTotals() {
	miles, disengagements, accidents, vehicles := avfda.PaperTotals()
	fmt.Printf("%.0f miles, %d disengagements, %d accidents, %d vehicles\n",
		miles, disengagements, accidents, vehicles)
	// Output: 1116605 miles, 5328 disengagements, 42 accidents, 144 vehicles
}
