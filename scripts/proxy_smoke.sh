#!/bin/sh
# proxy_smoke.sh — end-to-end smoke for the sharded serving topology
# (`make proxy-smoke`): one avserve -proxy in front of two backends, the
# second backend peered to the first for snapshot pull-through.
#
# Expects bin/avserve and bin/avload to exist (the make target builds
# them). Writes proxy-single-report.json (direct single-backend baseline)
# and proxy-report.json (sharded run through the proxy) for benchjson.
#
# What it proves, in order:
#   1. both shards take traffic (per-backend proxy counters nonzero);
#   2. repeated conditional requests return 304 through the proxy, both
#      via avload -conditional-every and a direct If-None-Match replay;
#   3. the two backends give byte-identical answers (and ETags) for the
#      same study — content-addressed snapshots, not luck;
#   4. a backend restarted with an empty snapshot directory warm-starts
#      from its peer: zero pipeline builds, >= 1 snapshot fetch;
#   5. on boxes with cores to spare (>= 3), sharded throughput is at
#      least 1.5x the single-backend baseline.
set -eu

PROXY_ADDR=${PROXY_ADDR:-127.0.0.1:18090}
B1_ADDR=${B1_ADDR:-127.0.0.1:18091}
B2_ADDR=${B2_ADDR:-127.0.0.1:18092}
DURATION=${PROXY_LOAD_DURATION:-10s}
SEEDS=${PROXY_SEEDS:-1,2}

TMP=$(mktemp -d)
PIDS=""
cleanup() {
	for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
	wait 2>/dev/null || true
	rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
	echo "proxy-smoke: FAIL: $*" >&2
	for log in "$TMP"/*.log; do
		[ -f "$log" ] && { echo "--- $log" >&2; tail -5 "$log" >&2; }
	done
	exit 1
}

# metric <addr> <name> — print a counter from /metrics, 0 if absent. The
# name must match the full first token, labels included.
metric() {
	curl -fsS "http://$1/metrics" |
		awk -v m="$2" '$1 == m {print $2; found=1} END {if (!found) print 0}'
}

# rps <report.json> — pull the top-level rps out of an avload/1 report.
rps() {
	awk -F'[:,]' '/"rps"/ {gsub(/[" ]/, "", $2); print $2; exit}' "$1"
}

wait_healthy() {
	for i in $(seq 1 100); do
		if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
		sleep 0.2
	done
	fail "$1 never answered /healthz"
}

mkdir -p "$TMP/snap1" "$TMP/snap2"

echo "proxy-smoke: starting 2 backends + proxy"
bin/avserve -addr "$B1_ADDR" -snapshot-dir "$TMP/snap1" -duration 600s 2>"$TMP/b1.log" &
PIDS="$PIDS $!"
bin/avserve -addr "$B2_ADDR" -snapshot-dir "$TMP/snap2" -peers "http://$B1_ADDR" -duration 600s 2>"$TMP/b2.log" &
B2_PID=$!
PIDS="$PIDS $B2_PID"
bin/avserve -proxy -backends "http://$B1_ADDR,http://$B2_ADDR" -addr "$PROXY_ADDR" -duration 600s 2>"$TMP/proxy.log" &
PIDS="$PIDS $!"
wait_healthy "$B1_ADDR"
wait_healthy "$B2_ADDR"
wait_healthy "$PROXY_ADDR"

# Phase 1: single-backend baseline, straight at backend 1. Also builds the
# warm seeds there and writes their snapshots through — the material the
# peer pull-through below distributes.
echo "proxy-smoke: single-backend baseline against $B1_ADDR"
bin/avload -url "http://$B1_ADDR" -duration "$DURATION" -c 4 -seeds "$SEEDS" \
	-warmup 240s -json -fail-on-errors -o proxy-single-report.json \
	|| fail "single-backend baseline run"

# Phase 2: the same load sharded through the proxy, with every 4th request
# a conditional replay.
echo "proxy-smoke: sharded run through $PROXY_ADDR"
bin/avload -url "http://$PROXY_ADDR" -duration "$DURATION" -c 4 -seeds "$SEEDS" \
	-conditional-every 4 -warmup 240s -json -fail-on-errors -o proxy-report.json \
	|| fail "sharded proxy run"

# 1. Both shards took traffic.
for b in "http://$B1_ADDR" "http://$B2_ADDR"; do
	n=$(metric "$PROXY_ADDR" "avserve_proxy_backend_requests_total{backend=\"$b\"}")
	[ "$n" -gt 0 ] || fail "proxy shard counter for $b is $n, want > 0"
done

# 2. Conditional requests returned 304s — in the load run and by hand.
grep -q '"notModified"' proxy-report.json || fail "avload saw no 304s through the proxy"
q1="http://$PROXY_ADDR/v1/studies/1/groupby?by=category"
tag=$(curl -fsS -D- -o /dev/null -H 'Accept-Encoding: identity' "$q1" |
	awk -F': ' 'tolower($1) == "etag" {print $2}' | tr -d '\r')
[ -n "$tag" ] || fail "no ETag on $q1"
code=$(curl -s -o /dev/null -w '%{http_code}' -H "If-None-Match: $tag" -H 'Accept-Encoding: identity' "$q1")
[ "$code" = 304 ] || fail "conditional replay of $q1 = $code, want 304"

# 3. Byte-identical answers from either backend. Asking backend 2 directly
# forces it to hold seed 1 (peer-fetched or built); the bodies and the
# content-addressed ETags must match backend 1's exactly.
q="/v1/studies/1/disengagements?mfr=Waymo&limit=25"
curl -fsS -D "$TMP/b1.hdr" -H 'Accept-Encoding: identity' "http://$B1_ADDR$q" >"$TMP/b1.body"
curl -fsS -D "$TMP/b2.hdr" -H 'Accept-Encoding: identity' "http://$B2_ADDR$q" >"$TMP/b2.body"
cmp -s "$TMP/b1.body" "$TMP/b2.body" || fail "backends disagree on $q"
t1=$(awk -F': ' 'tolower($1) == "etag" {print $2}' "$TMP/b1.hdr" | tr -d '\r')
t2=$(awk -F': ' 'tolower($1) == "etag" {print $2}' "$TMP/b2.hdr" | tr -d '\r')
[ -n "$t1" ] && [ "$t1" = "$t2" ] || fail "backend ETags differ: $t1 vs $t2"

# 4. Warm-start: restart backend 2 with a wiped snapshot directory. It
# must serve seed 1 by pulling the snapshot from backend 1 — zero builds.
echo "proxy-smoke: restarting $B2_ADDR with an empty snapshot dir"
kill "$B2_PID" 2>/dev/null || true
wait "$B2_PID" 2>/dev/null || true
rm -rf "$TMP/snap2"
mkdir -p "$TMP/snap2"
bin/avserve -addr "$B2_ADDR" -snapshot-dir "$TMP/snap2" -peers "http://$B1_ADDR" -duration 600s 2>>"$TMP/b2.log" &
B2_PID=$!
PIDS="$PIDS $B2_PID"
wait_healthy "$B2_ADDR"
curl -fsS "http://$B2_ADDR/v1/studies/1/disengagements?limit=1" >/dev/null \
	|| fail "restarted backend cannot serve seed 1"
builds=$(metric "$B2_ADDR" avserve_cache_builds_total)
fetches=$(metric "$B2_ADDR" avserve_snapshot_fetches_total)
[ "$builds" = 0 ] || fail "restarted backend ran $builds pipeline builds, want 0 (peer warm-start)"
[ "$fetches" -ge 1 ] || fail "restarted backend fetched $fetches snapshots, want >= 1"

# 5. Throughput scaling, where the box can show it.
single_rps=$(rps proxy-single-report.json)
sharded_rps=$(rps proxy-report.json)
cores=$( (nproc || sysctl -n hw.ncpu) 2>/dev/null | head -1 )
: "${cores:=1}"
if [ "$cores" -ge 3 ]; then
	awk -v a="$sharded_rps" -v b="$single_rps" 'BEGIN {exit !(a >= 1.5 * b)}' \
		|| fail "sharded rps $sharded_rps < 1.5x single-backend $single_rps"
else
	echo "proxy-smoke: $cores core(s): skipping the 1.5x scaling gate (sharded $sharded_rps rps vs single $single_rps)"
fi

echo "proxy-smoke: OK — single $single_rps rps, sharded $sharded_rps rps, both shards hot, 304s observed, peer warm-start with 0 builds"
